/** @file FaultInjectingSolver: fault schedules are pure functions of
 *  (plan seed, call index), every injected fault carries the matching
 *  taxonomy classification, and passthrough calls behave exactly like
 *  the backend. */

#include <gtest/gtest.h>

#include <vector>

#include "src/smt/fault_injection.h"
#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"

namespace keq::smt {
namespace {

struct Harness
{
    TermFactory tf;
    Z3Solver backend{tf};
    Term satQuery;   ///< x == 5 (satisfiable)
    Term unsatLeft;  ///< x == 5
    Term unsatRight; ///< x == 6

    Harness()
    {
        Term x = tf.var("x", Sort::bitVec(32));
        satQuery = tf.mkEq(x, tf.bvConst(32, 5));
        unsatLeft = satQuery;
        unsatRight = tf.mkEq(x, tf.bvConst(32, 6));
    }
};

TEST(FaultInjectionTest, DisabledPlanIsTransparent)
{
    Harness h;
    FaultPlan plan; // seed 0: no injection regardless of rates
    plan.unknownPercent = 100;
    FaultInjectingSolver solver(h.tf, h.backend, plan);

    EXPECT_EQ(solver.checkSat({h.satQuery}), SatResult::Sat);
    EXPECT_EQ(solver.checkSat({h.unsatLeft, h.unsatRight}),
              SatResult::Unsat);
    EXPECT_EQ(solver.stats().faultsInjected, 0u);
    EXPECT_EQ(solver.stats().queries, 2u);
    EXPECT_EQ(solver.stats().sat, 1u);
    EXPECT_EQ(solver.stats().unsat, 1u);
}

TEST(FaultInjectionTest, CertainFaultsCarryTheirClassification)
{
    Harness h;

    FaultPlan unknown;
    unknown.seed = 7;
    unknown.unknownPercent = 100;
    FaultInjectingSolver u(h.tf, h.backend, unknown);
    EXPECT_EQ(u.checkSat({h.satQuery}), SatResult::Unknown);
    EXPECT_EQ(u.lastFailureKind(), FailureKind::SolverUnknown);
    EXPECT_EQ(u.stats().faultsInjected, 1u);

    FaultPlan timeout;
    timeout.seed = 7;
    timeout.timeoutPercent = 100;
    FaultInjectingSolver t(h.tf, h.backend, timeout);
    EXPECT_EQ(t.checkSat({h.satQuery}), SatResult::Unknown);
    EXPECT_EQ(t.lastFailureKind(), FailureKind::Timeout);

    FaultPlan memory;
    memory.seed = 7;
    memory.memoryPercent = 100;
    FaultInjectingSolver m(h.tf, h.backend, memory);
    EXPECT_EQ(m.checkSat({h.satQuery}), SatResult::Unknown);
    EXPECT_EQ(m.lastFailureKind(), FailureKind::MemoryBudget);

    FaultPlan crash;
    crash.seed = 7;
    crash.crashPercent = 100;
    FaultInjectingSolver c(h.tf, h.backend, crash);
    EXPECT_THROW(c.checkSat({h.satQuery}), SolverCrashError);
    EXPECT_EQ(c.stats().faultsInjected, 1u);
}

TEST(FaultInjectionTest, ScheduleIsDeterministicInSeedAndCallIndex)
{
    Harness h;
    FaultPlan plan;
    plan.seed = 0xfeed;
    plan.unknownPercent = 40;

    auto run = [&](FaultPlan p) {
        FaultInjectingSolver solver(h.tf, h.backend, p);
        std::vector<SatResult> results;
        for (int i = 0; i < 32; ++i)
            results.push_back(solver.checkSat({h.satQuery}));
        return results;
    };

    std::vector<SatResult> first = run(plan);
    std::vector<SatResult> second = run(plan);
    EXPECT_EQ(first, second) << "same plan -> same schedule";

    bool injected = false, passed = false;
    for (SatResult result : first) {
        injected |= result == SatResult::Unknown;
        passed |= result == SatResult::Sat;
    }
    EXPECT_TRUE(injected) << "40% over 32 calls must fire at least once";
    EXPECT_TRUE(passed) << "and must pass through at least once";

    std::vector<SatResult> derived = run(plan.derive(3));
    EXPECT_NE(first, derived)
        << "derived sibling plans draw distinct schedules";
}

TEST(FaultInjectionTest, SlowdownStillAnswersCorrectly)
{
    Harness h;
    FaultPlan plan;
    plan.seed = 5;
    plan.slowdownPercent = 100;
    plan.slowdownMs = 1;
    FaultInjectingSolver solver(h.tf, h.backend, plan);
    EXPECT_EQ(solver.checkSat({h.satQuery}), SatResult::Sat);
    EXPECT_EQ(solver.checkSat({h.unsatLeft, h.unsatRight}),
              SatResult::Unsat);
    EXPECT_EQ(solver.stats().faultsInjected, 2u);
}

TEST(FaultInjectionTest, HangIsBoundedAndInterruptible)
{
    Harness h;
    FaultPlan plan;
    plan.seed = 11;
    plan.hangPercent = 100;
    plan.hangCapMs = 50; // watchdog-less runs must still terminate
    FaultInjectingSolver solver(h.tf, h.backend, plan);
    EXPECT_EQ(solver.checkSat({h.satQuery}), SatResult::Unknown);
    EXPECT_NE(solver.lastFailureKind(), FailureKind::None);
}

} // namespace
} // namespace keq::smt
