/** @file Out-of-process solver sandbox: verdict parity with the
 *  in-process stack, worker-death classification, real mid-query kills
 *  with respawn, heartbeat deadlines, cancellation, and graceful
 *  degradation when no worker binary exists. The worker binary path is
 *  baked in at compile time (KEQ_WORKER_BIN). */

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/smt/sandbox.h"
#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"
#include "src/support/subprocess.h"

namespace keq::smt {
namespace {

SandboxOptions
baseOptions()
{
    SandboxOptions options;
    options.workerPath = KEQ_WORKER_BIN;
    options.workers = 1;
    return options;
}

/**
 * A query Z3 chews on for a long time (64-bit factoring): long enough
 * that a chaos kill, heartbeat deadline, or cancellation reliably lands
 * while the worker is mid-solve.
 */
std::vector<Term>
hardAssertions(TermFactory &f)
{
    Sort bv64 = Sort::bitVec(64);
    Term x = f.var("hard_x", bv64);
    Term y = f.var("hard_y", bv64);
    Term one = f.bvConst(64, 1);
    // 4022270711 * 2934055723: a semiprime of two random 32-bit
    // primes. Both factors are capped at 32 bits so the product cannot
    // wrap mod 2^64 — otherwise any odd x solves it via the modular
    // inverse and Z3 answers instantly. With the caps the only model
    // is the true factorization, which bit-blasting does not find in
    // test-scale wall time.
    Term cap = f.bvConst(64, 0x100000000ULL);
    Term product = f.bvConst(64, 0xa3c7961cd171ec7dULL);
    return {
        f.mkEq(f.bvMul(x, y), product),
        f.bvUgt(x, one),
        f.bvUgt(y, one),
        f.bvUlt(x, cap),
        f.bvUlt(y, cap),
    };
}

TEST(ClassifyWorkerDeath, TaxonomyFromExitStatus)
{
    support::ExitStatus oom_exit;
    oom_exit.exited = true;
    oom_exit.exitCode = kWorkerOomExitCode;
    EXPECT_EQ(classifyWorkerDeath(oom_exit, 0, 0),
              FailureKind::WorkerOom)
        << "self-reported bad_alloc";

    support::ExitStatus sigsegv;
    sigsegv.signaled = true;
    sigsegv.signal = SIGSEGV;
    EXPECT_EQ(classifyWorkerDeath(sigsegv, 1000, 0),
              FailureKind::WorkerKilled)
        << "no memory cap: a signal is just a kill";
    EXPECT_EQ(classifyWorkerDeath(sigsegv, 10 * 1024, 512),
              FailureKind::WorkerKilled)
        << "RSS far below the cap";
    // Last heartbeat within 20% of a 512 MB cap: the kernel's rlimit
    // enforcement (SIGSEGV on a failed mmap) is the likely killer.
    EXPECT_EQ(classifyWorkerDeath(sigsegv, 500 * 1024, 512),
              FailureKind::WorkerOom);

    support::ExitStatus odd_exit;
    odd_exit.exited = true;
    odd_exit.exitCode = 3;
    EXPECT_EQ(classifyWorkerDeath(odd_exit, 0, 0),
              FailureKind::WorkerKilled);
}

TEST(DiscoverWorkerBinary, ExplicitPathWinsAndMissingDegrades)
{
    EXPECT_EQ(discoverWorkerBinary(KEQ_WORKER_BIN), KEQ_WORKER_BIN);
    EXPECT_EQ(discoverWorkerBinary("/nonexistent/keq-solver-worker"),
              "");
}

TEST(WorkerSupervisor, StartFailsLoudlyWithoutABinary)
{
    SandboxOptions options;
    options.workerPath = "/nonexistent/keq-solver-worker";
    WorkerSupervisor supervisor(options);
    std::string error;
    EXPECT_FALSE(supervisor.start(error));
    EXPECT_NE(error.find("keq-solver-worker"), std::string::npos)
        << error;
    EXPECT_FALSE(supervisor.started());
}

TEST(SandboxSolver, VerdictsMatchTheInProcessSolver)
{
    WorkerSupervisor supervisor(baseOptions());
    std::string error;
    ASSERT_TRUE(supervisor.start(error)) << error;

    // Several assertion sets spanning sat/unsat, solved both in-process
    // and through the sandbox from independent factories.
    for (int variant = 0; variant < 4; ++variant) {
        TermFactory local;
        TermFactory remote;
        auto build = [variant](TermFactory &f) -> std::vector<Term> {
            Sort bv32 = Sort::bitVec(32);
            Term x = f.var("x", bv32);
            Term y = f.var("y", bv32);
            switch (variant) {
              case 0: // sat: a satisfiable interval
                return {f.bvUlt(x, f.bvConst(32, 10)),
                        f.bvUgt(x, f.bvConst(32, 5))};
              case 1: // unsat: an empty interval
                return {f.bvUlt(x, f.bvConst(32, 5)),
                        f.bvUgt(x, f.bvConst(32, 10))};
              case 2: // unsat: x ^ y != y ^ x
                return {f.mkNot(f.mkEq(f.bvXor(x, y), f.bvXor(y, x)))};
              default: // sat: memory round-trip
              {
                Term mem = f.var("mem", Sort::memArray());
                Term addr = f.var("addr", Sort::bitVec(64));
                Term byte = f.var("byte", Sort::bitVec(8));
                return {f.mkEq(
                    f.select(f.store(mem, addr, byte), addr), byte)};
              }
            }
        };

        Z3Solver reference(local);
        SatResult expected = reference.checkSat(build(local));

        SandboxSolver sandboxed(remote, supervisor);
        SatResult actual = sandboxed.checkSat(build(remote));

        EXPECT_EQ(actual, expected) << "variant " << variant;
        EXPECT_EQ(sandboxed.lastFailureKind(), FailureKind::None);
        EXPECT_GT(sandboxed.stats().wireBytesSent, 0u);
        EXPECT_GT(sandboxed.stats().wireBytesReceived, 0u);
    }
    supervisor.stop();
}

TEST(SandboxSolver, SessionsIsolateVariableNamespaces)
{
    WorkerSupervisor supervisor(baseOptions());
    std::string error;
    ASSERT_TRUE(supervisor.start(error)) << error;

    // The same variable name at two different sorts, in two different
    // sessions sharing one worker. The Reset between sessions gives the
    // worker a fresh factory, so this must not trip the cross-query
    // collision defense.
    {
        TermFactory f;
        SandboxSolver solver(f, supervisor);
        Term v = f.var("v", Sort::bitVec(32));
        EXPECT_EQ(solver.checkSat({f.mkEq(v, f.bvConst(32, 1))}),
                  SatResult::Sat);
    }
    {
        TermFactory f;
        SandboxSolver solver(f, supervisor);
        Term v = f.var("v", Sort::boolSort());
        EXPECT_EQ(solver.checkSat({v}), SatResult::Sat);
        EXPECT_EQ(solver.lastFailureKind(), FailureKind::None);
    }
    supervisor.stop();
}

TEST(SandboxSolver, ChaosKillMidQueryIsContainedAndWorkerRespawns)
{
    SandboxOptions options = baseOptions();
    options.chaosKillRate = 1.0; // every tick shoots every busy worker
    options.chaosTickMs = 5;
    WorkerSupervisor supervisor(options);
    std::string error;
    ASSERT_TRUE(supervisor.start(error)) << error;

    TermFactory f;
    SandboxSolver solver(f, supervisor);
    SatResult result = solver.checkSat(hardAssertions(f));

    // The kill lands mid-solve: the query is lost (Unknown) and
    // classified as a worker death, never an in-process crash.
    EXPECT_EQ(result, SatResult::Unknown);
    FailureKind kind = solver.lastFailureKind();
    EXPECT_TRUE(kind == FailureKind::WorkerKilled ||
                kind == FailureKind::WorkerOom)
        << failureKindName(kind);
    EXPECT_GE(solver.stats().workerCrashes, 1u);

    // Containment: with the monkey throttled, later queries on the
    // same supervisor still get answered (the worker respawns). Retry
    // a few times in case a pre-throttle kill is still in flight.
    supervisor.setChaosKillRate(0.0);
    bool recovered = false;
    for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
        TermFactory fresh;
        SandboxSolver retry(fresh, supervisor);
        Term x = fresh.var("x", Sort::bitVec(8));
        SatResult trivial =
            retry.checkSat({fresh.mkEq(x, fresh.bvConst(8, 1))});
        recovered = trivial == SatResult::Sat &&
                    retry.lastFailureKind() == FailureKind::None;
    }
    EXPECT_TRUE(recovered) << "no query succeeded after the kill";
    EXPECT_GE(supervisor.transportTotals().workerRestarts, 1u);
    supervisor.stop();
}

TEST(SandboxSolver, HeartbeatSilenceBecomesATimeout)
{
    SandboxOptions options = baseOptions();
    // Worker beats every 60 s; the supervisor tolerates 300 ms of
    // silence. A long solve therefore trips the heartbeat deadline.
    options.heartbeatIntervalMs = 60000;
    options.heartbeatGraceMs = 300;
    WorkerSupervisor supervisor(options);
    std::string error;
    ASSERT_TRUE(supervisor.start(error)) << error;

    TermFactory f;
    SandboxSolver solver(f, supervisor);
    SatResult result = solver.checkSat(hardAssertions(f));
    EXPECT_EQ(result, SatResult::Unknown);
    EXPECT_EQ(solver.lastFailureKind(), FailureKind::Timeout);
    EXPECT_GE(solver.stats().heartbeatTimeouts, 1u);
    supervisor.stop();
}

TEST(SandboxSolver, InterruptClassifiesCancelledNotCrash)
{
    WorkerSupervisor supervisor(baseOptions());
    std::string error;
    ASSERT_TRUE(supervisor.start(error)) << error;

    TermFactory f;
    SandboxSolver solver(f, supervisor);
    std::thread interrupter([&solver] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        solver.interruptQuery();
    });
    SatResult result = solver.checkSat(hardAssertions(f));
    interrupter.join();

    EXPECT_EQ(result, SatResult::Unknown);
    EXPECT_EQ(solver.lastFailureKind(), FailureKind::Cancelled)
        << "cancellation must win over every death classification";
    supervisor.stop();
}

/**
 * Finds one live keq-solver-worker child of this process and SIGKILLs
 * it — the deterministic "shoot exactly one lane" lever the portfolio
 * chaos test needs (the chaos monkey shoots *every* busy worker).
 * Returns the pid killed, or 0 when no worker child exists yet.
 */
pid_t
killOneWorkerChild()
{
    DIR *proc = opendir("/proc");
    if (proc == nullptr)
        return 0;
    pid_t self = getpid();
    pid_t victim = 0;
    while (victim == 0) {
        errno = 0;
        struct dirent *entry = readdir(proc);
        if (entry == nullptr)
            break;
        char *end = nullptr;
        long pid = std::strtol(entry->d_name, &end, 10);
        if (end == entry->d_name || *end != '\0' || pid <= 0)
            continue;
        std::ifstream stat("/proc/" + std::string(entry->d_name) +
                           "/stat");
        std::string line;
        if (!std::getline(stat, line))
            continue;
        // stat field 2 is "(comm)" (may contain spaces); field 4 is the
        // ppid, two tokens after the closing parenthesis.
        size_t open = line.find('(');
        size_t close = line.rfind(')');
        if (open == std::string::npos || close == std::string::npos)
            continue;
        std::string comm = line.substr(open + 1, close - open - 1);
        std::istringstream rest(line.substr(close + 1));
        std::string state;
        pid_t ppid = 0;
        rest >> state >> ppid;
        if (ppid == self && comm.rfind("keq-solver", 0) == 0) {
            victim = static_cast<pid_t>(pid);
            kill(victim, SIGKILL);
        }
    }
    closedir(proc);
    return victim;
}

TEST(SolveGroup, RaceMatchesSingleLaneVerdicts)
{
    SandboxOptions options = baseOptions();
    options.workers = 2;
    WorkerSupervisor supervisor(options);
    std::string error;
    ASSERT_TRUE(supervisor.start(error)) << error;

    for (int variant = 0; variant < 2; ++variant) {
        TermFactory local;
        TermFactory remote;
        auto build = [variant](TermFactory &f) -> std::vector<Term> {
            Sort bv32 = Sort::bitVec(32);
            Term x = f.var("x", bv32);
            if (variant == 0) // sat
                return {f.bvUlt(x, f.bvConst(32, 10)),
                        f.bvUgt(x, f.bvConst(32, 5))};
            return {f.bvUlt(x, f.bvConst(32, 5)), // unsat
                    f.bvUgt(x, f.bvConst(32, 10))};
        };

        Z3Solver reference(local);
        SatResult expected = reference.checkSat(build(local));

        SandboxSolver raced(remote, supervisor, {"default", "cold"});
        ASSERT_EQ(raced.laneCount(), 2u);
        SatResult actual = raced.checkSat(build(remote));

        EXPECT_EQ(actual, expected) << "variant " << variant;
        EXPECT_EQ(raced.lastFailureKind(), FailureKind::None);

        const SolverStats &stats = raced.stats();
        EXPECT_EQ(stats.queries, 1u);
        EXPECT_EQ(stats.sat + stats.unsat, 1u);
        EXPECT_EQ(stats.unknown, 0u)
            << "a cancelled loser must never surface in the verdict "
               "counters";
        uint64_t wins = 0;
        for (uint64_t lane_wins : stats.portfolioWins)
            wins += lane_wins;
        EXPECT_EQ(wins, 1u);
    }
    supervisor.stop();
}

TEST(SolveGroup, LaneCountClampsToThePoolSize)
{
    // One worker, two requested lanes: the race degrades to a
    // single-lane solve instead of deadlocking on the second slot.
    WorkerSupervisor supervisor(baseOptions());
    std::string error;
    ASSERT_TRUE(supervisor.start(error)) << error;

    TermFactory f;
    SandboxSolver raced(f, supervisor, {"default", "cold"});
    Term x = f.var("x", Sort::bitVec(8));
    EXPECT_EQ(raced.checkSat({f.mkEq(x, f.bvConst(8, 9))}),
              SatResult::Sat);
    EXPECT_EQ(raced.lastFailureKind(), FailureKind::None);
    supervisor.stop();
}

TEST(SolveGroup, UserInterruptIsStillClassifiedCancelled)
{
    SandboxOptions options = baseOptions();
    options.workers = 2;
    WorkerSupervisor supervisor(options);
    std::string error;
    ASSERT_TRUE(supervisor.start(error)) << error;

    TermFactory f;
    SandboxSolver raced(f, supervisor, {"default", "cold"});
    std::thread interrupter([&raced] {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        raced.interruptQuery();
    });
    SatResult result = raced.checkSat(hardAssertions(f));
    interrupter.join();

    EXPECT_EQ(result, SatResult::Unknown);
    EXPECT_EQ(raced.lastFailureKind(), FailureKind::Cancelled)
        << "user cancellation (unlike loser reaping) must surface";
    supervisor.stop();
}

TEST(SolveGroup, KilledLaneMidRaceConvergesAndPoolRecovers)
{
    SandboxOptions options = baseOptions();
    options.workers = 2;
    WorkerSupervisor supervisor(options);
    std::string error;
    ASSERT_TRUE(supervisor.start(error)) << error;

    // Both lanes grind on the factoring query (bounded by the solver
    // timeout); one lane's worker takes a real SIGKILL mid-race. The
    // race must still converge: the survivor's honest answer (here a
    // timeout-bounded Unknown) comes back classified, never Cancelled,
    // never a hang.
    TermFactory f;
    SandboxSolver raced(f, supervisor, {"default", "cold"});
    raced.setTimeoutMs(2000);
    std::vector<Term> hard = hardAssertions(f);

    SatResult result = SatResult::Sat;
    std::thread solver_thread(
        [&] { result = raced.checkSat(hard); });
    // Let both lanes get busy, then shoot exactly one of them.
    pid_t victim = 0;
    for (int attempt = 0; attempt < 100 && victim == 0; ++attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        victim = killOneWorkerChild();
    }
    solver_thread.join();
    ASSERT_NE(victim, 0) << "never saw a live worker child to kill";

    EXPECT_EQ(result, SatResult::Unknown);
    EXPECT_NE(raced.lastFailureKind(), FailureKind::None);
    EXPECT_NE(raced.lastFailureKind(), FailureKind::Cancelled)
        << "a killed lane must never masquerade as a cancellation";

    // Convergence after the kill: the pool respawns and a fresh race
    // over the same lanes answers definitely again.
    bool recovered = false;
    for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
        TermFactory fresh;
        SandboxSolver retry(fresh, supervisor, {"default", "cold"});
        Term x = fresh.var("x", Sort::bitVec(8));
        recovered = retry.checkSat({fresh.mkEq(
                         x, fresh.bvConst(8, 7))}) == SatResult::Sat &&
                    retry.lastFailureKind() == FailureKind::None;
    }
    EXPECT_TRUE(recovered) << "no race succeeded after the lane kill";
    supervisor.stop();
}

TEST(SandboxSolver, StatsKeepTheVerdictCounterContract)
{
    WorkerSupervisor supervisor(baseOptions());
    std::string error;
    ASSERT_TRUE(supervisor.start(error)) << error;

    TermFactory f;
    SandboxSolver solver(f, supervisor);
    Term x = f.var("x", Sort::bitVec(16));
    solver.checkSat({f.bvUlt(x, f.bvConst(16, 3))});
    solver.checkSat({f.bvUlt(x, f.bvConst(16, 3)),
                     f.bvUgt(x, f.bvConst(16, 7))});

    const SolverStats &stats = solver.stats();
    EXPECT_EQ(stats.queries, 2u);
    EXPECT_EQ(stats.sat + stats.unsat + stats.unknown, 2u)
        << "one verdict per logical query, worker work folded "
           "separately";
    supervisor.stop();
}

} // namespace
} // namespace keq::smt
