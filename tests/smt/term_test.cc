/** @file Hash-consing and simplification tests for the term factory. */

#include <gtest/gtest.h>

#include "src/smt/term_factory.h"
#include "src/support/diagnostics.h"

namespace keq::smt {
namespace {

using support::ApInt;

class TermTest : public ::testing::Test
{
  protected:
    TermFactory tf;
    Term x = tf.var("x", Sort::bitVec(32));
    Term y = tf.var("y", Sort::bitVec(32));
    Term zero = tf.bvConst(32, 0);
    Term one = tf.bvConst(32, 1);
    Term p = tf.var("p", Sort::boolSort());
    Term q = tf.var("q", Sort::boolSort());
};

TEST_F(TermTest, HashConsingSharesStructure)
{
    EXPECT_EQ(tf.bvAdd(x, y), tf.bvAdd(x, y));
    EXPECT_EQ(tf.bvConst(32, 7), tf.bvConst(ApInt(32, 7)));
    EXPECT_EQ(tf.var("x", Sort::bitVec(32)), x);
    // Commutative operands canonicalize.
    EXPECT_EQ(tf.bvAdd(x, y), tf.bvAdd(y, x));
    EXPECT_EQ(tf.bvMul(x, y), tf.bvMul(y, x));
    EXPECT_EQ(tf.mkEq(x, y), tf.mkEq(y, x));
    // Non-commutative operations do not.
    EXPECT_NE(tf.bvSub(x, y), tf.bvSub(y, x));
}

TEST_F(TermTest, VariableSortClash)
{
    EXPECT_THROW(tf.var("x", Sort::bitVec(8)), support::InternalError);
}

TEST_F(TermTest, FreshVarsAreDistinct)
{
    EXPECT_NE(tf.freshVar("h", Sort::bitVec(8)),
              tf.freshVar("h", Sort::bitVec(8)));
}

TEST_F(TermTest, ConstantFolding)
{
    EXPECT_EQ(tf.bvAdd(tf.bvConst(32, 2), tf.bvConst(32, 3)),
              tf.bvConst(32, 5));
    EXPECT_EQ(tf.bvMul(tf.bvConst(8, 16), tf.bvConst(8, 16)),
              tf.bvConst(8, 0));
    EXPECT_EQ(tf.bvUlt(tf.bvConst(32, 1), tf.bvConst(32, 2)),
              tf.trueTerm());
    EXPECT_EQ(tf.bvSlt(tf.bvConst(8, 0xff), tf.bvConst(8, 0)),
              tf.trueTerm());
}

TEST_F(TermTest, DivisionByZeroConstantStaysSymbolic)
{
    Term div = tf.bvUDiv(one, zero);
    EXPECT_EQ(div.kind(), Kind::BvUDiv);
}

TEST_F(TermTest, AlgebraicIdentities)
{
    EXPECT_EQ(tf.bvAdd(x, zero), x);
    EXPECT_EQ(tf.bvAdd(zero, x), x);
    EXPECT_EQ(tf.bvSub(x, zero), x);
    EXPECT_EQ(tf.bvSub(x, x), zero);
    EXPECT_EQ(tf.bvMul(x, one), x);
    EXPECT_EQ(tf.bvMul(x, zero), zero);
    EXPECT_EQ(tf.bvAnd(x, zero), zero);
    EXPECT_EQ(tf.bvAnd(x, tf.bvConst(ApInt::allOnes(32))), x);
    EXPECT_EQ(tf.bvAnd(x, x), x);
    EXPECT_EQ(tf.bvOr(x, zero), x);
    EXPECT_EQ(tf.bvXor(x, x), zero);
    EXPECT_EQ(tf.bvShl(x, zero), x);
    EXPECT_EQ(tf.bvNot(tf.bvNot(x)), x);
    EXPECT_EQ(tf.bvNeg(tf.bvNeg(x)), x);
}

TEST_F(TermTest, PredicateIdentities)
{
    EXPECT_EQ(tf.bvUlt(x, x), tf.falseTerm());
    EXPECT_EQ(tf.bvUle(x, x), tf.trueTerm());
    EXPECT_EQ(tf.mkEq(x, x), tf.trueTerm());
    EXPECT_EQ(tf.mkEq(zero, one), tf.falseTerm());
}

TEST_F(TermTest, BooleanIdentities)
{
    EXPECT_EQ(tf.mkAnd(p, tf.trueTerm()), p);
    EXPECT_EQ(tf.mkAnd(p, tf.falseTerm()), tf.falseTerm());
    EXPECT_EQ(tf.mkOr(p, tf.falseTerm()), p);
    EXPECT_EQ(tf.mkOr(p, tf.trueTerm()), tf.trueTerm());
    EXPECT_EQ(tf.mkAnd(p, p), p);
    EXPECT_EQ(tf.mkNot(tf.mkNot(p)), p);
    EXPECT_EQ(tf.mkIff(p, p), tf.trueTerm());
    EXPECT_EQ(tf.mkIff(p, tf.falseTerm()), tf.mkNot(p));
    EXPECT_EQ(tf.mkImplies(tf.falseTerm(), p), tf.trueTerm());
}

TEST_F(TermTest, IteSimplification)
{
    EXPECT_EQ(tf.mkIte(tf.trueTerm(), x, y), x);
    EXPECT_EQ(tf.mkIte(tf.falseTerm(), x, y), y);
    EXPECT_EQ(tf.mkIte(p, x, x), x);
}

TEST_F(TermTest, EqOfConstArmedIteFoldsToCondition)
{
    // This is the fold that collapses flag/SETcc encodings back to the
    // branch predicate across the two languages.
    Term cond = tf.bvUlt(x, y);
    Term bit = tf.mkIte(cond, tf.bvConst(1, 1), tf.bvConst(1, 0));
    EXPECT_EQ(tf.mkEq(bit, tf.bvConst(1, 1)), cond);
    EXPECT_EQ(tf.mkEq(bit, tf.bvConst(1, 0)), tf.mkNot(cond));
    EXPECT_EQ(tf.mkEq(tf.bvConst(1, 1), bit), cond);
}

TEST_F(TermTest, ExtensionPushesThroughConstArmedIte)
{
    Term cond = tf.bvUlt(x, y);
    Term bit8 = tf.mkIte(cond, tf.bvConst(8, 1), tf.bvConst(8, 0));
    Term bit1 = tf.mkIte(cond, tf.bvConst(1, 1), tf.bvConst(1, 0));
    // zext of the 1-bit and 8-bit encodings meet at the same term.
    EXPECT_EQ(tf.zext(bit8, 32), tf.zext(bit1, 32));
    EXPECT_EQ(tf.trunc(bit8, 1), bit1);
}

TEST_F(TermTest, WidthOperations)
{
    EXPECT_EQ(tf.zext(x, 32), x);
    EXPECT_EQ(tf.zext(tf.bvConst(8, 0xff), 32), tf.bvConst(32, 0xff));
    EXPECT_EQ(tf.sext(tf.bvConst(8, 0xff), 32),
              tf.bvConst(32, 0xffffffff));
    EXPECT_EQ(tf.extract(tf.bvConst(32, 0x12345678), 15, 8),
              tf.bvConst(8, 0x56));
    EXPECT_EQ(tf.extract(x, 31, 0), x);
    EXPECT_EQ(tf.trunc(tf.bvConst(32, 0x1234), 8), tf.bvConst(8, 0x34));
    // zext of zext composes.
    Term b = tf.var("b8", Sort::bitVec(8));
    EXPECT_EQ(tf.zext(tf.zext(b, 16), 32), tf.zext(b, 32));
    // extract of zext routes below/above the original width.
    EXPECT_EQ(tf.extract(tf.zext(b, 32), 7, 0), b);
    EXPECT_EQ(tf.extract(tf.zext(b, 32), 31, 8), tf.bvConst(24, 0));
    // extract of extract composes.
    EXPECT_EQ(tf.extract(tf.extract(x, 23, 8), 7, 0),
              tf.extract(x, 15, 8));
}

TEST_F(TermTest, ConcatFolding)
{
    EXPECT_EQ(tf.concat(tf.bvConst(8, 0x12), tf.bvConst(8, 0x34)),
              tf.bvConst(16, 0x1234));
    Term b = tf.var("b8", Sort::bitVec(8));
    EXPECT_EQ(tf.concat(tf.bvConst(8, 0), b), tf.zext(b, 16));
    // Adjacent extracts of the same base reassemble.
    EXPECT_EQ(tf.concat(tf.extract(x, 15, 8), tf.extract(x, 7, 0)),
              tf.extract(x, 15, 0));
}

TEST_F(TermTest, SelectOverStoreChains)
{
    Term mem = tf.var("m", Sort::memArray());
    Term a0 = tf.bvConst(64, 0x1000);
    Term a1 = tf.bvConst(64, 0x1001);
    Term v = tf.var("v8", Sort::bitVec(8));
    Term stored = tf.store(mem, a0, v);
    // Same concrete address: read back the stored value.
    EXPECT_EQ(tf.select(stored, a0), v);
    // Distinct constant address: read through the store.
    EXPECT_EQ(tf.select(stored, a1), tf.select(mem, a1));
    // Symbolic index blocks the walk.
    Term idx = tf.var("i64", Sort::bitVec(64));
    EXPECT_EQ(tf.select(stored, idx).kind(), Kind::Select);
}

TEST_F(TermTest, StoreNormalization)
{
    Term mem = tf.var("m", Sort::memArray());
    Term addr = tf.bvConst(64, 0x1000);
    Term v1 = tf.var("v1", Sort::bitVec(8));
    Term v2 = tf.var("v2", Sort::bitVec(8));
    // Overwriting store collapses.
    EXPECT_EQ(tf.store(tf.store(mem, addr, v1), addr, v2),
              tf.store(mem, addr, v2));
    // Storing back the read value is a no-op.
    EXPECT_EQ(tf.store(mem, addr, tf.select(mem, addr)), mem);
}

TEST_F(TermTest, ReadWriteBytesRoundTrip)
{
    Term mem = tf.var("m", Sort::memArray());
    Term addr = tf.bvConst(64, 0x2000);
    Term value = tf.var("w32", Sort::bitVec(32));
    Term written = tf.writeBytes(mem, addr, value, 4);
    // Little-endian read of what was written yields the value again.
    EXPECT_EQ(tf.readBytes(written, addr, 4), value);
}

TEST_F(TermTest, ReadBytesConcreteLittleEndian)
{
    Term mem = tf.var("m", Sort::memArray());
    Term addr = tf.bvConst(64, 0);
    Term written =
        tf.writeBytes(mem, addr, tf.bvConst(32, 0x11223344), 4);
    EXPECT_EQ(tf.select(written, tf.bvConst(64, 0)), tf.bvConst(8, 0x44));
    EXPECT_EQ(tf.select(written, tf.bvConst(64, 3)), tf.bvConst(8, 0x11));
}

TEST_F(TermTest, ComparisonNegationFlips)
{
    // !(a <u b) == (b <=u a), etc. — keeps the comparison language
    // closed under negation across flag encodings.
    EXPECT_EQ(tf.mkNot(tf.bvUlt(x, y)), tf.bvUle(y, x));
    EXPECT_EQ(tf.mkNot(tf.bvUle(x, y)), tf.bvUlt(y, x));
    EXPECT_EQ(tf.mkNot(tf.bvSlt(x, y)), tf.bvSle(y, x));
    EXPECT_EQ(tf.mkNot(tf.bvSle(x, y)), tf.bvSlt(y, x));
    // Involutive.
    EXPECT_EQ(tf.mkNot(tf.mkNot(tf.bvSlt(x, y))), tf.bvSlt(x, y));
    // ugt spelled two ways meets at one term.
    EXPECT_EQ(tf.bvUgt(x, y), tf.mkNot(tf.bvUle(x, y)));
}

TEST_F(TermTest, StrictOrEqualMerges)
{
    // The x86 BE condition (cf || zf) folds to ule.
    EXPECT_EQ(tf.mkOr(tf.bvUlt(x, y), tf.mkEq(x, y)), tf.bvUle(x, y));
    EXPECT_EQ(tf.mkOr(tf.mkEq(y, x), tf.bvUlt(x, y)), tf.bvUle(x, y));
    EXPECT_EQ(tf.mkOr(tf.bvSlt(x, y), tf.mkEq(x, y)), tf.bvSle(x, y));
}

TEST_F(TermTest, ComplementDetectionThroughFlips)
{
    Term c = tf.bvUlt(x, y);
    Term not_c = tf.mkNot(c); // == ule(y, x)
    EXPECT_EQ(tf.mkOr(c, not_c), tf.trueTerm());
    EXPECT_EQ(tf.mkOr(not_c, c), tf.trueTerm());
    EXPECT_EQ(tf.mkAnd(c, not_c), tf.falseTerm());
}

TEST_F(TermTest, OpsDistributeOverConstArmedIte)
{
    Term c = tf.bvUlt(x, y);
    Term sel = tf.mkIte(c, tf.bvConst(32, 62), tf.bvConst(32, 29));
    // mul(x, ite(c, 62, 29)) pushes into the arms — the select-mask
    // normalization that keeps Z3 away from bit-blasting products.
    EXPECT_EQ(tf.bvMul(x, sel),
              tf.mkIte(c, tf.bvMul(x, tf.bvConst(32, 62)),
                       tf.bvMul(x, tf.bvConst(32, 29))));
    // Shared-condition ites merge arm-wise.
    Term sel2 = tf.mkIte(c, x, zero);
    Term sel3 = tf.mkIte(c, zero, y);
    EXPECT_EQ(tf.bvOr(tf.bvAnd(x, tf.mkIte(c, tf.bvConst(32, ~0u),
                                           zero)),
                      tf.bvAnd(y, tf.mkIte(c, zero,
                                           tf.bvConst(32, ~0u)))),
              tf.mkIte(c, x, y));
    EXPECT_EQ(tf.bvAdd(sel2, sel3), tf.mkIte(c, x, y));
    // Unary ops push through any ite.
    EXPECT_EQ(tf.bvNeg(tf.mkIte(c, tf.bvConst(32, 1), zero)),
              tf.mkIte(c, tf.bvConst(ApInt::allOnes(32)), zero));
    // Predicates distribute too.
    EXPECT_EQ(tf.bvUlt(sel, tf.bvConst(32, 40)),
              tf.mkIte(c, tf.falseTerm(), tf.trueTerm()));
}

TEST_F(TermTest, SignReplicationConcatFoldsToSext)
{
    // concat(sext(x[31]), x) == sext(x, 64): the CDQ pattern.
    Term sign = tf.extract(x, 31, 31);
    Term high = tf.sext(sign, 32);
    EXPECT_EQ(tf.concat(high, x), tf.sext(x, 64));
}

TEST_F(TermTest, PrinterSmoke)
{
    Term t = tf.bvAdd(x, tf.bvConst(32, 5));
    std::string text = t.toString();
    EXPECT_NE(text.find("bvadd"), std::string::npos);
    EXPECT_NE(text.find("x"), std::string::npos);
    EXPECT_NE(text.find("5:bv32"), std::string::npos);
}

TEST_F(TermTest, NodeCountGrowsOnlyForNewStructure)
{
    size_t before = tf.nodeCount();
    tf.bvAdd(x, y);
    size_t after_first = tf.nodeCount();
    tf.bvAdd(y, x); // canonicalized duplicate
    EXPECT_EQ(tf.nodeCount(), after_first);
    EXPECT_GT(after_first, before);
}

} // namespace
} // namespace keq::smt
