/** @file Rewrite-engine tests: targeted rule checks, a randomized
 *  model-preservation sweep against the concrete Evaluator, and a
 *  differential sweep of simplifyQuery against Z3 verdicts. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/smt/evaluator.h"
#include "src/smt/simplifier.h"
#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"
#include "src/support/rng.h"

namespace keq::smt {
namespace {

using support::ApInt;
using support::Rng;

Term
var32(TermFactory &tf, const char *name)
{
    return tf.var(name, Sort::bitVec(32));
}

TEST(SimplifierTest, AssociativeConstantRefolding)
{
    TermFactory tf;
    Simplifier simp(tf);
    Term x = var32(tf, "x");
    // (x - 5) - 6 -> x + (-11): subtraction funnels into addition and
    // the constants refold across the chain.
    Term term = tf.bvSub(tf.bvSub(x, tf.bvConst(32, 5)),
                         tf.bvConst(32, 6));
    Term expected = tf.bvAdd(x, tf.bvConst(ApInt(32, 11).neg()));
    EXPECT_EQ(simp.rewrite(term), expected);
    EXPECT_GT(simp.rewriteCount(), 0u);

    // (x & 0xff) & 0x0f -> x & 0x0f.
    Term masked = tf.bvAnd(tf.bvAnd(x, tf.bvConst(32, 0xff)),
                           tf.bvConst(32, 0x0f));
    EXPECT_EQ(simp.rewrite(masked), tf.bvAnd(x, tf.bvConst(32, 0x0f)));
}

TEST(SimplifierTest, ComparisonBoundsAndExtensionStripping)
{
    TermFactory tf;
    Simplifier simp(tf);
    Term x = var32(tf, "x");
    Term y = var32(tf, "y");

    EXPECT_EQ(simp.rewrite(tf.bvUlt(x, tf.bvConst(32, 0))),
              tf.falseTerm());
    EXPECT_EQ(simp.rewrite(tf.bvUlt(x, tf.bvConst(32, 1))),
              tf.mkEq(x, tf.bvConst(32, 0)));
    EXPECT_EQ(simp.rewrite(
                  tf.bvUle(x, tf.bvConst(ApInt::allOnes(32)))),
              tf.trueTerm());
    // zext is an order embedding for unsigned comparisons.
    EXPECT_EQ(simp.rewrite(tf.bvUlt(tf.zext(x, 64), tf.zext(y, 64))),
              tf.bvUlt(x, y));
    // zext(x) < 2^32 over 64 bits is a tautology.
    EXPECT_EQ(simp.rewrite(tf.bvUlt(tf.zext(x, 64),
                                    tf.bvConst(64, 1ull << 32))),
              tf.trueTerm());
}

TEST(SimplifierTest, EqualityNormalization)
{
    TermFactory tf;
    Simplifier simp(tf);
    Term x = var32(tf, "x");

    // eq(x + 3, 10) -> eq(x, 7): exposes the definitional form.
    EXPECT_EQ(simp.rewrite(tf.mkEq(tf.bvAdd(x, tf.bvConst(32, 3)),
                                   tf.bvConst(32, 10))),
              tf.mkEq(x, tf.bvConst(32, 7)));
    // eq(zext8->32(x8), 0x1ff): the high bits cannot match.
    Term x8 = tf.var("b", Sort::bitVec(8));
    EXPECT_EQ(simp.rewrite(
                  tf.mkEq(tf.zext(x8, 32), tf.bvConst(32, 0x1ff))),
              tf.falseTerm());
    // eq(x + 1, x) cancels to false.
    EXPECT_EQ(simp.rewrite(tf.mkEq(tf.bvAdd(x, tf.bvConst(32, 1)), x)),
              tf.falseTerm());
}

TEST(SimplifierTest, IteLifting)
{
    TermFactory tf;
    Simplifier simp(tf);
    Term p = tf.var("p", Sort::boolSort());
    Term q = tf.var("q", Sort::boolSort());
    Term x = var32(tf, "x");
    Term y = var32(tf, "y");

    EXPECT_EQ(simp.rewrite(tf.mkIte(p, tf.trueTerm(), q)),
              tf.mkOr(p, q));
    EXPECT_EQ(simp.rewrite(tf.mkIte(p, q, tf.falseTerm())),
              tf.mkAnd(p, q));
    // ite(!p, a, b) -> ite(p, b, a).
    EXPECT_EQ(simp.rewrite(tf.mkIte(tf.mkNot(p), x, y)),
              tf.mkIte(p, y, x));
    // Nested same-condition decisions collapse.
    EXPECT_EQ(simp.rewrite(tf.mkIte(p, tf.mkIte(p, x, y), y)),
              tf.mkIte(p, x, y));
}

TEST(SimplifierTest, SubstituteVarsRebuildsThroughTheFactory)
{
    TermFactory tf;
    Term x = var32(tf, "x");
    Term y = var32(tf, "y");
    Term term = tf.bvAdd(tf.bvMul(x, x), y);
    std::unordered_map<std::string, Term> map{
        {"x", tf.bvConst(32, 3)}};
    // 3 * 3 folds on construction, so the result is 9 + y.
    EXPECT_EQ(substituteVars(tf, term, map),
              tf.bvAdd(tf.bvConst(32, 9), y));
    // Unmapped variables survive untouched.
    EXPECT_EQ(substituteVars(tf, y, map), y);
}

TEST(SimplifierTest, EqualityPropagationEliminatesDefinitions)
{
    TermFactory tf;
    Simplifier simp(tf);
    Term x = var32(tf, "x");
    Term y = var32(tf, "y");
    // x == y + 1 is definitional; substituting turns the second
    // assertion into a pure y-constraint.
    SimplifyResult result = simp.simplifyQuery(
        {tf.mkEq(x, tf.bvAdd(y, tf.bvConst(32, 1))),
         tf.bvUlt(x, tf.bvConst(32, 5))});
    ASSERT_FALSE(result.decided.has_value());
    EXPECT_EQ(result.eliminatedVars, 1u);
    ASSERT_EQ(result.assertions.size(), 1u);
    EXPECT_EQ(result.assertions[0],
              tf.bvUlt(tf.bvAdd(y, tf.bvConst(32, 1)),
                       tf.bvConst(32, 5)));
}

TEST(SimplifierTest, StructuralFastPaths)
{
    TermFactory tf;
    Simplifier simp(tf);
    Term x = var32(tf, "x");

    // A chained contradiction resolves to Unsat with no solver.
    SimplifyResult unsat = simp.simplifyQuery(
        {tf.mkEq(x, tf.bvConst(32, 1)), tf.mkEq(x, tf.bvConst(32, 2))});
    EXPECT_EQ(unsat.decided, SatResult::Unsat);

    // A pure definition chain rewrites away entirely: Sat.
    Term y = var32(tf, "y");
    SimplifyResult sat = simp.simplifyQuery(
        {tf.mkEq(x, tf.bvAdd(y, tf.bvConst(32, 1))),
         tf.mkEq(y, tf.bvConst(32, 41))});
    EXPECT_EQ(sat.decided, SatResult::Sat);

    // The empty query is trivially Sat.
    EXPECT_EQ(simp.simplifyQuery({}).decided, SatResult::Sat);
}

/**
 * Random model-preservation sweep: rewrite() must be *eval-identical*,
 * not merely equisatisfiable. Build random boolean DAGs over a small
 * variable pool, then compare eval(t) with eval(rewrite(t)) under many
 * random assignments.
 */
class SimplifierModelProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SimplifierModelProperty, RewritePreservesEvaluation)
{
    Rng rng(GetParam() * 0xD1342543DE82EF95ull + 1);
    TermFactory tf;
    Simplifier simp(tf);

    std::vector<Term> bvs = {
        var32(tf, "a"), var32(tf, "b"), var32(tf, "c"),
        tf.bvConst(32, 0), tf.bvConst(32, 1),
        tf.bvConst(ApInt::allOnes(32)), tf.bvConst(32, 0x80000000ull),
    };
    std::vector<Term> bools = {tf.var("p", Sort::boolSort()),
                               tf.trueTerm()};

    auto pick_bv = [&]() { return bvs[rng.below(bvs.size())]; };
    auto pick_bool = [&]() { return bools[rng.below(bools.size())]; };

    for (int step = 0; step < 150; ++step) {
        switch (rng.below(6)) {
          case 0: {
            static const Kind kOps[] = {Kind::BvAdd, Kind::BvSub,
                                        Kind::BvMul, Kind::BvAnd,
                                        Kind::BvOr,  Kind::BvXor,
                                        Kind::BvShl, Kind::BvLShr};
            bvs.push_back(tf.bvBinOp(kOps[rng.below(8)], pick_bv(),
                                     pick_bv()));
            break;
          }
          case 1: {
            static const Kind kPreds[] = {Kind::BvUlt, Kind::BvUle,
                                          Kind::BvSlt, Kind::BvSle,
                                          Kind::Eq};
            bools.push_back(
                tf.bvPredicate(kPreds[rng.below(5)], pick_bv(),
                               pick_bv()));
            break;
          }
          case 2:
            bools.push_back(rng.chancePercent(50)
                                ? tf.mkAnd(pick_bool(), pick_bool())
                                : tf.mkOr(pick_bool(), pick_bool()));
            break;
          case 3:
            bvs.push_back(tf.mkIte(pick_bool(), pick_bv(), pick_bv()));
            break;
          case 4:
            bvs.push_back(rng.chancePercent(50) ? tf.bvNot(pick_bv())
                                                : tf.bvNeg(pick_bv()));
            break;
          default: {
            Term narrow = tf.trunc(pick_bv(), 8);
            bvs.push_back(rng.chancePercent(50) ? tf.zext(narrow, 32)
                                                : tf.sext(narrow, 32));
            break;
          }
        }

        Term original = bools.back();
        Term rewritten = simp.rewrite(original);
        for (int probe = 0; probe < 8; ++probe) {
            Assignment env;
            env.setBv("a", ApInt(32, probe == 0 ? 0 : rng.next()));
            env.setBv("b", ApInt(32, probe == 1 ? ~0ull : rng.next()));
            env.setBv("c", ApInt(32, rng.next()));
            env.setBool("p", (rng.next() & 1) != 0);
            Evaluator eval(env);
            EXPECT_EQ(eval.evalBool(original), eval.evalBool(rewritten))
                << original.toString() << "\n  vs "
                << rewritten.toString();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifierModelProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

/**
 * Differential sweep against Z3: whatever simplifyQuery decides or
 * produces must have exactly the verdict of the original assertion set.
 */
class SimplifyQueryProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SimplifyQueryProperty, SimplifiedQueriesKeepTheirVerdict)
{
    Rng rng(GetParam() * 0xA24BAED4963EE407ull + 3);
    TermFactory tf;
    Z3Solver z3(tf);
    Simplifier simp(tf);

    std::vector<Term> vars = {var32(tf, "a"), var32(tf, "b"),
                              var32(tf, "c"), var32(tf, "d")};
    auto random_atom = [&]() -> Term {
        Term x = vars[rng.below(vars.size())];
        Term rhs = rng.chancePercent(50)
                       ? vars[rng.below(vars.size())]
                       : tf.bvConst(32, rng.below(12));
        if (rng.chancePercent(30))
            x = tf.bvAdd(x, tf.bvConst(32, rng.below(5)));
        switch (rng.below(3)) {
          case 0: return tf.mkEq(x, rhs);
          case 1: return tf.bvUlt(x, rhs);
          default: return tf.bvUle(x, rhs);
        }
    };

    for (int round = 0; round < 25; ++round) {
        std::vector<Term> query;
        size_t count = 1 + rng.below(5);
        for (size_t i = 0; i < count; ++i)
            query.push_back(random_atom());

        SatResult reference = z3.checkSat(query);
        ASSERT_NE(reference, SatResult::Unknown);

        SimplifyResult result = simp.simplifyQuery(query);
        if (result.decided.has_value()) {
            EXPECT_EQ(*result.decided, reference)
                << "round " << round;
        } else {
            EXPECT_EQ(z3.checkSat(result.assertions), reference)
                << "round " << round;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyQueryProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

} // namespace
} // namespace keq::smt
