/** @file Cone-of-influence slicer tests: targeted cone structure checks
 *  plus a randomized differential sweep proving sliced and unsliced
 *  queries get identical Z3 verdicts. */

#include <gtest/gtest.h>

#include <vector>

#include "src/smt/evaluator.h"
#include "src/smt/slicer.h"
#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"
#include "src/support/rng.h"

namespace keq::smt {
namespace {

using support::ApInt;
using support::Rng;

Term
var32(TermFactory &tf, const char *name)
{
    return tf.var(name, Sort::bitVec(32));
}

TEST(SlicerTest, SharedVariablesMergeCones)
{
    TermFactory tf;
    Slicer slicer(tf);
    Term x = var32(tf, "x");
    Term y = var32(tf, "y");
    Term z = var32(tf, "z");
    // x~y and y~z chain into a single cone; w is its own.
    Term w = var32(tf, "w");
    SliceResult result = slicer.slice({tf.bvUlt(x, y), tf.bvUlt(y, z),
                                       tf.bvUlt(w, tf.bvConst(32, 9))});
    EXPECT_EQ(result.components, 2u);
}

TEST(SlicerTest, WitnessedConesAreDroppedWithTheirModel)
{
    TermFactory tf;
    Slicer slicer(tf);
    Term x = var32(tf, "x");
    Term y = var32(tf, "y");
    // The x-cone is satisfied by the all-zeros probe; the y-cone
    // (y * y == 25) needs y == 5, which no cheap probe finds.
    std::vector<Term> hard = {tf.mkEq(tf.bvMul(y, y),
                                      tf.bvConst(32, 25))};
    SliceResult result = slicer.slice(
        {tf.bvUlt(x, tf.bvConst(32, 10)), hard[0]});
    ASSERT_FALSE(result.decided.has_value());
    EXPECT_EQ(result.components, 2u);
    EXPECT_EQ(result.droppedAssertions, 1u);
    ASSERT_EQ(result.kept.size(), 1u);
    EXPECT_EQ(result.kept[0], hard[0]);
    // The combined witness must actually satisfy the dropped cone.
    Evaluator eval(result.droppedWitness);
    EXPECT_TRUE(eval.evalBool(tf.bvUlt(x, tf.bvConst(32, 10))));
}

TEST(SlicerTest, AllConesDischargedMeansSat)
{
    TermFactory tf;
    Slicer slicer(tf);
    Term x = var32(tf, "x");
    Term y = var32(tf, "y");
    // Both cones fall to simple probes (x = 0; y = ~0).
    SliceResult result = slicer.slice(
        {tf.bvUlt(x, tf.bvConst(32, 10)),
         tf.mkEq(tf.bvAnd(y, tf.bvConst(32, 1)), tf.bvConst(32, 1))});
    EXPECT_EQ(result.decided, SatResult::Sat);
    EXPECT_EQ(result.droppedAssertions, 2u);
    // The witness satisfies the whole original query.
    Evaluator eval(result.droppedWitness);
    EXPECT_TRUE(eval.evalBool(tf.bvUlt(x, tf.bvConst(32, 10))));
    EXPECT_TRUE(eval.evalBool(
        tf.mkEq(tf.bvAnd(y, tf.bvConst(32, 1)), tf.bvConst(32, 1))));
}

TEST(SlicerTest, EmptyAndLiteralQueries)
{
    TermFactory tf;
    Slicer slicer(tf);
    EXPECT_EQ(slicer.slice({}).decided, SatResult::Sat);
    EXPECT_EQ(slicer.slice({tf.falseTerm()}).decided, SatResult::Unsat);
    Term x = var32(tf, "x");
    // A false literal decides the query even next to live cones.
    EXPECT_EQ(slicer
                  .slice({tf.bvUlt(x, tf.bvConst(32, 10)),
                          tf.falseTerm()})
                  .decided,
              SatResult::Unsat);
}

TEST(SlicerTest, UnsatConeIsKeptForTheSolver)
{
    TermFactory tf;
    Slicer slicer(tf);
    Term x = var32(tf, "x");
    Term y = var32(tf, "y");
    // The x-cone is a contradiction no witness can discharge; the
    // satisfiable y-cone is pruned away. Solving only the kept cone
    // still yields the right (Unsat) verdict.
    std::vector<Term> query = {tf.mkEq(x, tf.bvConst(32, 1)),
                               tf.mkEq(x, tf.bvConst(32, 2)),
                               tf.bvUlt(y, tf.bvConst(32, 10))};
    SliceResult result = slicer.slice(query);
    ASSERT_FALSE(result.decided.has_value());
    EXPECT_EQ(result.kept.size(), 2u);
    EXPECT_EQ(result.droppedAssertions, 1u);
    Z3Solver z3(tf);
    EXPECT_EQ(z3.checkSat(result.kept), SatResult::Unsat);
    EXPECT_EQ(z3.checkSat(query), SatResult::Unsat);
}

/**
 * Differential sweep: slicing must never change the verdict. Random
 * queries over disjoint-ish variable pools are checked both raw and
 * sliced; a decided slice must match Z3 on the original, an undecided
 * one must keep a verdict-equivalent residue.
 */
class SlicerDifferentialProperty
    : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SlicerDifferentialProperty, SlicedVerdictMatchesUnsliced)
{
    Rng rng(GetParam() * 0x9FB21C651E98DF25ull + 7);
    TermFactory tf;
    Slicer slicer(tf);
    Z3Solver z3(tf);

    // Eight variables; atoms pick their operands from a random
    // two-variable window, so queries form several small cones.
    std::vector<Term> vars;
    for (char c = 'a'; c < 'a' + 8; ++c) {
        char name[2] = {c, 0};
        vars.push_back(var32(tf, name));
    }
    auto random_atom = [&]() -> Term {
        size_t base = rng.below(vars.size() - 1);
        Term x = vars[base];
        Term other = rng.chancePercent(40)
                         ? vars[base + 1]
                         : tf.bvConst(32, rng.below(16));
        if (rng.chancePercent(30))
            x = tf.bvMul(x, x); // make some cones probe-resistant
        switch (rng.below(4)) {
          case 0: return tf.mkEq(x, other);
          case 1: return tf.mkEq(tf.bvAnd(x, tf.bvConst(32, 7)), other);
          case 2: return tf.bvUlt(x, other);
          default: return tf.bvUle(other, x);
        }
    };

    for (int round = 0; round < 20; ++round) {
        std::vector<Term> query;
        size_t count = 1 + rng.below(6);
        for (size_t i = 0; i < count; ++i)
            query.push_back(random_atom());

        SatResult reference = z3.checkSat(query);
        ASSERT_NE(reference, SatResult::Unknown);

        SliceResult result = slicer.slice(query);
        if (result.decided.has_value()) {
            EXPECT_EQ(*result.decided, reference) << "round " << round;
        } else {
            EXPECT_EQ(z3.checkSat(result.kept), reference)
                << "round " << round;
            EXPECT_EQ(result.kept.size() + result.droppedAssertions,
                      query.size());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlicerDifferentialProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

} // namespace
} // namespace keq::smt
