/** @file GuardedSolver: retries recover transient Unknowns, the ladder
 *  escalates to fresh rungs, crashes are absorbed into classified
 *  failures, the watchdog enforces deadlines and cancellation, and the
 *  stats contract counts each logical query exactly once. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/smt/guarded_solver.h"
#include "src/smt/term_factory.h"
#include "src/support/cancellation.h"

namespace keq::smt {
namespace {

/** Deterministic fake backend driven by a per-call script; the last
 *  step repeats forever. */
class ScriptedSolver : public Solver
{
  public:
    enum class Step
    {
        Sat,
        Unsat,
        Unknown,
        Crash,
        MemoryCrash,
        Hang, ///< blocks until interruptQuery() (5 s safety cap)
    };

    ScriptedSolver(TermFactory &tf, std::vector<Step> script)
        : tf_(tf), script_(std::move(script))
    {}

    SatResult
    checkSat(const std::vector<Term> &) override
    {
        ++stats_.queries;
        Step step = script_.empty()
                        ? Step::Sat
                        : script_[std::min(calls_, script_.size() - 1)];
        ++calls_;
        switch (step) {
        case Step::Sat:
            ++stats_.sat;
            return SatResult::Sat;
        case Step::Unsat:
            ++stats_.unsat;
            return SatResult::Unsat;
        case Step::Unknown:
            ++stats_.unknown;
            lastReason_ = "scripted incompleteness";
            return SatResult::Unknown;
        case Step::Crash:
            throw SolverCrashError("scripted crash");
        case Step::MemoryCrash:
            throw SolverCrashError("scripted memory blowup");
        case Step::Hang: {
            auto start = std::chrono::steady_clock::now();
            while (!interrupted_.load() &&
                   std::chrono::steady_clock::now() - start <
                       std::chrono::seconds(5)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
            interrupted_.store(false);
            ++stats_.unknown;
            lastReason_ = "canceled";
            return SatResult::Unknown;
        }
        }
        ++stats_.unknown;
        return SatResult::Unknown;
    }

    void setTimeoutMs(unsigned) override {}
    void interruptQuery() override { interrupted_.store(true); }
    std::string lastUnknownReason() const override { return lastReason_; }
    const SolverStats &stats() const override { return stats_; }
    size_t calls() const { return calls_; }

  protected:
    TermFactory &factory() override { return tf_; }

  private:
    TermFactory &tf_;
    std::vector<Step> script_;
    size_t calls_ = 0;
    SolverStats stats_;
    std::string lastReason_;
    std::atomic<bool> interrupted_{false};
};

using Step = ScriptedSolver::Step;

GuardedSolverOptions
fastOptions()
{
    GuardedSolverOptions options;
    options.backoffBaseMs = 0; // keep the suite quick
    return options;
}

GuardedSolver::RungFactory
rungOf(TermFactory &tf, std::vector<Step> script)
{
    return [&tf, script] {
        return std::make_unique<ScriptedSolver>(tf, script);
    };
}

TEST(GuardedSolverTest, HealthyPrimaryPassesStraightThrough)
{
    TermFactory tf;
    ScriptedSolver primary(tf, {Step::Sat, Step::Unsat});
    GuardedSolver guard(tf, primary, {}, fastOptions());

    EXPECT_EQ(guard.checkSat({}), SatResult::Sat);
    EXPECT_EQ(guard.checkSat({}), SatResult::Unsat);
    EXPECT_EQ(guard.stats().queries, 2u);
    EXPECT_EQ(guard.stats().sat, 1u);
    EXPECT_EQ(guard.stats().unsat, 1u);
    EXPECT_EQ(guard.stats().guardedRetries, 0u);
    EXPECT_EQ(guard.stats().guardedEscalations, 0u);
}

TEST(GuardedSolverTest, TransientUnknownIsRetriedOnTheSameRung)
{
    TermFactory tf;
    ScriptedSolver primary(tf, {Step::Unknown, Step::Sat});
    GuardedSolverOptions options = fastOptions();
    options.retries = 1;
    GuardedSolver guard(tf, primary, {}, options);

    EXPECT_EQ(guard.checkSat({}), SatResult::Sat);
    EXPECT_EQ(primary.calls(), 2u);
    // Stats contract: one logical query, one Sat — the retry shows up
    // only in its dedicated counter.
    EXPECT_EQ(guard.stats().queries, 1u);
    EXPECT_EQ(guard.stats().sat, 1u);
    EXPECT_EQ(guard.stats().unknown, 0u);
    EXPECT_EQ(guard.stats().guardedRetries, 1u);
}

TEST(GuardedSolverTest, EscalationResolvesOnAFreshRung)
{
    TermFactory tf;
    ScriptedSolver primary(tf, {Step::Unknown}); // wedged forever
    GuardedSolverOptions options = fastOptions();
    options.retries = 0;
    GuardedSolver guard(tf, primary, {rungOf(tf, {Step::Unsat})},
                        options);

    EXPECT_EQ(guard.checkSat({}), SatResult::Unsat);
    EXPECT_EQ(guard.stats().queries, 1u);
    EXPECT_EQ(guard.stats().unsat, 1u);
    EXPECT_EQ(guard.stats().guardedEscalations, 1u);
    EXPECT_EQ(guard.stats().escalatedResolved, 1u);
}

TEST(GuardedSolverTest, ExhaustedLadderReportsAClassifiedUnknown)
{
    TermFactory tf;
    ScriptedSolver primary(tf, {Step::Unknown});
    GuardedSolverOptions options = fastOptions();
    options.retries = 1;
    GuardedSolver guard(tf, primary, {}, options);

    EXPECT_EQ(guard.checkSat({}), SatResult::Unknown);
    EXPECT_EQ(guard.lastFailureKind(), FailureKind::SolverUnknown);
    EXPECT_EQ(guard.stats().unknown, 1u) << "counted once, not per try";
    EXPECT_EQ(guard.stats().queries, 1u);
    EXPECT_EQ(guard.stats().guardedRetries, 1u);
}

TEST(GuardedSolverTest, CrashesAreAbsorbedAndClassified)
{
    TermFactory tf;
    ScriptedSolver primary(tf, {Step::Crash});
    GuardedSolverOptions options = fastOptions();
    options.retries = 1;
    GuardedSolver guard(tf, primary, {}, options);

    SatResult result = SatResult::Sat;
    EXPECT_NO_THROW(result = guard.checkSat({}));
    EXPECT_EQ(result, SatResult::Unknown);
    EXPECT_EQ(guard.lastFailureKind(), FailureKind::SolverCrash);
    EXPECT_EQ(guard.stats().solverCrashes, 2u) << "both attempts crashed";
    EXPECT_EQ(guard.stats().unknown, 1u);
}

TEST(GuardedSolverTest, MemoryCrashesClassifyAsMemoryBudget)
{
    TermFactory tf;
    ScriptedSolver primary(tf, {Step::MemoryCrash});
    GuardedSolverOptions options = fastOptions();
    options.retries = 0;
    GuardedSolver guard(tf, primary, {}, options);

    EXPECT_EQ(guard.checkSat({}), SatResult::Unknown);
    EXPECT_EQ(guard.lastFailureKind(), FailureKind::MemoryBudget);
}

TEST(GuardedSolverTest, WatchdogEnforcesTheDeadlineAndEscalates)
{
    TermFactory tf;
    ScriptedSolver primary(tf, {Step::Hang});
    GuardedSolverOptions options = fastOptions();
    options.deadlineMs = 50;
    options.retries = 0;
    GuardedSolver guard(tf, primary, {rungOf(tf, {Step::Sat})},
                        options);

    auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(guard.checkSat({}), SatResult::Sat)
        << "a hung rung 0 must not cost the verdict";
    auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, std::chrono::seconds(4))
        << "the watchdog, not the hang cap, must break the hang";
    EXPECT_GE(guard.stats().watchdogInterrupts, 1u);
    EXPECT_EQ(guard.stats().escalatedResolved, 1u);
}

TEST(GuardedSolverTest, DeadlineWithoutFallbackClassifiesAsTimeout)
{
    TermFactory tf;
    ScriptedSolver primary(tf, {Step::Hang});
    GuardedSolverOptions options = fastOptions();
    options.deadlineMs = 50;
    options.retries = 0;
    GuardedSolver guard(tf, primary, {}, options);

    EXPECT_EQ(guard.checkSat({}), SatResult::Unknown);
    EXPECT_EQ(guard.lastFailureKind(), FailureKind::Timeout);
    EXPECT_GE(guard.stats().watchdogInterrupts, 1u);
}

TEST(GuardedSolverTest, PreCancelledTokenShortCircuits)
{
    TermFactory tf;
    ScriptedSolver primary(tf, {Step::Sat});
    GuardedSolverOptions options = fastOptions();
    options.cancel = support::CancellationToken::create();
    options.cancel.cancel();
    GuardedSolver guard(tf, primary, {}, options);

    EXPECT_EQ(guard.checkSat({}), SatResult::Unknown);
    EXPECT_EQ(guard.lastFailureKind(), FailureKind::Cancelled);
    EXPECT_EQ(primary.calls(), 0u) << "no solving after cancellation";
}

TEST(GuardedSolverTest, MidQueryCancellationInterruptsTheBackend)
{
    TermFactory tf;
    ScriptedSolver primary(tf, {Step::Hang});
    GuardedSolverOptions options = fastOptions();
    options.cancel = support::CancellationToken::create();
    options.retries = 3; // must not be consumed retrying cancelled work
    GuardedSolver guard(tf, primary, {rungOf(tf, {Step::Sat})},
                        options);

    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        options.cancel.cancel();
    });
    SatResult result = guard.checkSat({});
    canceller.join();

    EXPECT_EQ(result, SatResult::Unknown);
    EXPECT_EQ(guard.lastFailureKind(), FailureKind::Cancelled);
    EXPECT_EQ(primary.calls(), 1u) << "cancelled work is not retried";
}

/**
 * Models the nastiest interleaving: SIGINT lands in the same instant
 * the watchdog deadline fires. The hang only breaks when interrupted,
 * and the interruption itself cancels the run token — so by the time
 * the guard classifies the Unknown, both "deadline fired" and
 * "cancelled" are true simultaneously.
 */
class CancelOnInterruptSolver : public Solver
{
  public:
    CancelOnInterruptSolver(TermFactory &tf,
                            support::CancellationToken cancel)
        : tf_(tf), cancel_(std::move(cancel))
    {}

    SatResult
    checkSat(const std::vector<Term> &) override
    {
        ++stats_.queries;
        ++calls_;
        auto start = std::chrono::steady_clock::now();
        while (!interrupted_.load() &&
               std::chrono::steady_clock::now() - start <
                   std::chrono::seconds(5)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        interrupted_.store(false);
        ++stats_.unknown;
        return SatResult::Unknown;
    }

    void setTimeoutMs(unsigned) override {}

    void
    interruptQuery() override
    {
        cancel_.cancel();
        interrupted_.store(true);
    }

    std::string lastUnknownReason() const override { return "canceled"; }
    const SolverStats &stats() const override { return stats_; }
    size_t calls() const { return calls_; }

  protected:
    TermFactory &factory() override { return tf_; }

  private:
    TermFactory &tf_;
    support::CancellationToken cancel_;
    std::atomic<bool> interrupted_{false};
    size_t calls_ = 0;
    SolverStats stats_;
};

TEST(GuardedSolverTest, CancellationRacingTheDeadlineClassifiesCancelled)
{
    TermFactory tf;
    GuardedSolverOptions options = fastOptions();
    options.deadlineMs = 40;
    options.retries = 3;
    options.cancel = support::CancellationToken::create();
    CancelOnInterruptSolver primary(tf, options.cancel);
    // A fallback rung that would happily answer — escalating cancelled
    // work would be as wrong as retrying it.
    GuardedSolver guard(tf, primary, {rungOf(tf, {Step::Sat})},
                        options);

    EXPECT_EQ(guard.checkSat({}), SatResult::Unknown);
    EXPECT_EQ(guard.lastFailureKind(), FailureKind::Cancelled)
        << "cancellation must beat the simultaneous deadline";
    EXPECT_EQ(primary.calls(), 1u) << "no retry of cancelled work";
    EXPECT_EQ(guard.stats().guardedEscalations, 0u)
        << "no escalation of cancelled work";
}

} // namespace
} // namespace keq::smt
