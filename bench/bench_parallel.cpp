/**
 * @file
 * Experiment E11 — parallel validation pipeline with the memoizing
 * solver cache (no paper counterpart; ROADMAP scaling work).
 *
 * Three runs over the same Figure 6 corpus (seed 0x6cc2006):
 *
 *   1. serial baseline — the legacy pipeline: one function at a time,
 *      every solver query hits Z3 cold (exactly what
 *      bench_fig6_validation measures);
 *   2. serial + cache  — same order, queries memoized across sync
 *      points and functions;
 *   3. parallel + cache — Pipeline::runParallel with KEQ_PAR_JOBS
 *      workers sharing one sharded QueryCache.
 *
 * The harness asserts that all three runs produce identical ordered
 * verdicts (the determinism contract of runParallel), then reports
 * wall-clock speedups and the cache hit rate. On a single-core host the
 * speedup is delivered by the cache; with more cores the fan-out
 * multiplies it.
 *
 * Scale knobs: KEQ_PAR_FUNCTIONS (corpus size), KEQ_PAR_JOBS (workers).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/stopwatch.h"
#include "src/support/thread_pool.h"

int
main()
{
    using namespace keq;

    size_t function_count = bench::envSize("KEQ_PAR_FUNCTIONS", 240);
    unsigned jobs =
        static_cast<unsigned>(bench::envSize("KEQ_PAR_JOBS", 4));

    driver::CorpusOptions copts;
    copts.functionCount = function_count;
    copts.seed = 0x6cc2006; // the Figure 6 corpus
    llvmir::Module module =
        llvmir::parseModule(driver::generateCorpusSource(copts));
    llvmir::verifyModuleOrThrow(module);

    driver::PipelineOptions options; // no wall budgets: verdicts must be
                                     // timing-independent for the
                                     // identity assertion below

    std::cout << "=== E11: parallel validation + solver cache ===\n";
    std::cout << "corpus: " << function_count
              << " Figure 6 functions (seed " << copts.seed << "), jobs "
              << jobs << " (host has "
              << support::ThreadPool::hardwareThreads()
              << " hardware thread(s); workers are capped there)\n\n";

    // Baseline: the legacy serial pipeline (cold solver per query, no
    // preprocessing, no incremental backend).
    driver::ExecutionOptions serial_exec;
    serial_exec.jobs = 1;
    serial_exec.solverCache = false;
    serial_exec.simplifyQueries = false;
    serial_exec.sliceQueries = false;
    serial_exec.incrementalSolver = false;
    driver::Pipeline serial_pipeline(options, serial_exec);
    support::Stopwatch watch;
    driver::ModuleReport serial = serial_pipeline.run(module);
    double serial_seconds = watch.seconds();

    driver::ExecutionOptions cached_exec;
    cached_exec.jobs = 1;
    driver::Pipeline cached_pipeline(options, cached_exec);
    watch.reset();
    driver::ModuleReport cached = cached_pipeline.run(module);
    double cached_seconds = watch.seconds();

    driver::ExecutionOptions parallel_exec;
    parallel_exec.jobs = jobs;
    driver::Pipeline parallel_pipeline(options, parallel_exec);
    watch.reset();
    driver::ModuleReport parallel =
        parallel_pipeline.runParallel(module);
    double parallel_seconds = watch.seconds();

    // Parallel + cached verdicts must be byte-identical to serial ones.
    bool identical =
        serial.canonicalSummary() == cached.canonicalSummary() &&
        serial.canonicalSummary() == parallel.canonicalSummary();
    if (!identical) {
        std::cerr << "FAIL: runs disagree on verdicts\n";
        return 1;
    }

    std::cout << serial.renderTable() << "\n";
    std::printf("serial (cold solver):  %7.2f s\n", serial_seconds);
    std::printf("serial + cache:        %7.2f s  (%.2fx)\n",
                cached_seconds, serial_seconds / cached_seconds);
    std::printf("parallel x%-2u + cache: %7.2f s  (%.2fx)\n", jobs,
                parallel_seconds, serial_seconds / parallel_seconds);
    std::printf("solver time: %.2f s of the serial run\n",
                serial.solverStats.totalSeconds);
    std::printf("cache: %llu key hits + %llu model hits / %llu lookups "
                "(%.1f%% avoided the solver), %llu entries, "
                "%llu evictions\n",
                static_cast<unsigned long long>(
                    parallel.cacheStats.hits),
                static_cast<unsigned long long>(
                    parallel.cacheStats.modelHits),
                static_cast<unsigned long long>(
                    parallel.cacheStats.hits +
                    parallel.cacheStats.misses),
                100.0 * parallel.cacheStats.hitRate(),
                static_cast<unsigned long long>(
                    parallel.cacheStats.entries),
                static_cast<unsigned long long>(
                    parallel.cacheStats.evictions));
    std::printf("verdicts: identical across all three runs\n");

    bench::JsonReporter json;
    json.field("bench", std::string("parallel"));
    json.field("functions", uint64_t{function_count});
    json.field("jobs", uint64_t{jobs});
    json.field("serial_seconds", serial_seconds);
    json.field("cached_seconds", cached_seconds);
    json.field("parallel_seconds", parallel_seconds);
    json.field("cached_speedup", serial_seconds / cached_seconds);
    json.field("parallel_speedup", serial_seconds / parallel_seconds);
    json.field("cache_hits", parallel.cacheStats.hits);
    json.field("cache_model_hits", parallel.cacheStats.modelHits);
    json.field("cache_misses", parallel.cacheStats.misses);
    json.field("verdicts_identical", identical);
    json.writeFile("BENCH_parallel.json");
    return 0;
}
