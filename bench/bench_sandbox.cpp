/**
 * @file
 * Experiment E12 — out-of-process solver sandbox overhead (no paper
 * counterpart; the crash-containment work from DESIGN.md §11).
 *
 * Two runs over the same Figure 6 corpus (seed 0x6cc2006):
 *
 *   1. in-process — the regular pipeline: solver stack in the
 *      validator's own address space;
 *   2. sandboxed  — `--sandbox`: every query serialized over the wire
 *      protocol to a supervised keq-solver-worker pool under rlimits.
 *
 * The harness asserts that both runs produce identical ordered
 * verdicts (the sandbox's transparency contract: the checker must not
 * be able to tell where the solver lives), then reports the wall-clock
 * cost of isolation and the IPC volume per query. This is the price
 * paid for surviving solver crashes and kernel-enforced memory caps.
 *
 * Scale knobs: KEQ_SANDBOX_FUNCTIONS (corpus size), KEQ_SANDBOX_JOBS
 * (pipeline threads; the worker pool is sized to match).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/stopwatch.h"

int
main()
{
    using namespace keq;

    size_t function_count =
        bench::envSize("KEQ_SANDBOX_FUNCTIONS", 120);
    unsigned jobs =
        static_cast<unsigned>(bench::envSize("KEQ_SANDBOX_JOBS", 4));

    driver::CorpusOptions copts;
    copts.functionCount = function_count;
    copts.seed = 0x6cc2006; // the Figure 6 corpus
    llvmir::Module module =
        llvmir::parseModule(driver::generateCorpusSource(copts));
    llvmir::verifyModuleOrThrow(module);

    driver::PipelineOptions options; // no wall budgets: verdicts must
                                     // be timing-independent for the
                                     // identity assertion below

    std::cout << "=== E12: solver sandbox overhead ===\n";
    std::cout << "corpus: " << function_count
              << " Figure 6 functions (seed " << copts.seed
              << "), jobs " << jobs << "\n\n";

    driver::ExecutionOptions in_process_exec;
    in_process_exec.jobs = jobs;
    driver::Pipeline in_process_pipeline(options, in_process_exec);
    support::Stopwatch watch;
    driver::ModuleReport in_process =
        in_process_pipeline.runParallel(module);
    double in_process_seconds = watch.seconds();

    driver::ExecutionOptions sandbox_exec;
    sandbox_exec.jobs = jobs;
    sandbox_exec.sandbox = true;
    sandbox_exec.workerPath = KEQ_WORKER_BIN;
    driver::Pipeline sandbox_pipeline(options, sandbox_exec);
    watch.reset();
    driver::ModuleReport sandboxed =
        sandbox_pipeline.runParallel(module);
    double sandboxed_seconds = watch.seconds();

    // The transparency contract: isolation must not change a verdict.
    bool identical =
        in_process.canonicalSummary() == sandboxed.canonicalSummary();
    if (!identical) {
        std::cerr << "FAIL: sandboxed verdicts diverge from "
                     "in-process ones\n";
        return 1;
    }
    if (sandboxed.solverStats.wireBytesSent == 0) {
        std::cerr << "FAIL: sandbox run never touched the wire "
                     "(degraded to in-process?)\n";
        return 1;
    }

    const smt::SolverStats &stats = sandboxed.solverStats;
    uint64_t solved = stats.cacheMisses > 0 ? stats.cacheMisses
                                            : stats.queries;
    double overhead =
        in_process_seconds > 0.0
            ? sandboxed_seconds / in_process_seconds
            : 0.0;

    std::cout << in_process.renderTable() << "\n";
    std::printf("in-process x%-2u: %7.2f s\n", jobs,
                in_process_seconds);
    std::printf("sandboxed  x%-2u: %7.2f s  (%.2fx overhead)\n", jobs,
                sandboxed_seconds, overhead);
    std::printf("wire: %llu bytes out, %llu bytes in over %llu "
                "solver-bound queries (%.0f bytes/query round trip)\n",
                static_cast<unsigned long long>(stats.wireBytesSent),
                static_cast<unsigned long long>(
                    stats.wireBytesReceived),
                static_cast<unsigned long long>(solved),
                solved > 0
                    ? static_cast<double>(stats.wireBytesSent +
                                          stats.wireBytesReceived) /
                          static_cast<double>(solved)
                    : 0.0);
    std::printf("worker pool: %llu crash(es), %llu restart(s), %llu "
                "heartbeat timeout(s)\n",
                static_cast<unsigned long long>(stats.workerCrashes),
                static_cast<unsigned long long>(stats.workerRestarts),
                static_cast<unsigned long long>(
                    stats.heartbeatTimeouts));
    std::printf("verdicts: identical across both runs\n");

    bench::JsonReporter json;
    json.field("bench", std::string("sandbox"));
    json.field("functions", uint64_t{function_count});
    json.field("jobs", uint64_t{jobs});
    json.field("in_process_seconds", in_process_seconds);
    json.field("sandboxed_seconds", sandboxed_seconds);
    json.field("sandbox_overhead", overhead);
    json.field("wire_bytes_sent", stats.wireBytesSent);
    json.field("wire_bytes_received", stats.wireBytesReceived);
    json.field("solver_queries", stats.queries);
    json.field("worker_crashes", stats.workerCrashes);
    json.field("worker_restarts", stats.workerRestarts);
    json.field("verdicts_identical", identical);
    json.writeFile("BENCH_sandbox.json");
    return 0;
}
