/**
 * @file
 * Experiment E4 — the paper's running example (Figures 1-3):
 * end-to-end validation of arithm_seq_sum, timed with google-benchmark.
 *
 * Prints the generated Virtual x86 and the synchronization point table
 * (compare against Figures 2(b) and 3), then measures the cost of each
 * pipeline stage: ISel, VC generation, and the KEQ check itself.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "src/driver/pipeline.h"
#include "src/isel/isel.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/vcgen/vcgen.h"

namespace {

const char *const kArithmSeqSum = R"(
define i32 @arithm_seq_sum(i32 %a0, i32 %d, i32 %n) {
entry:
  br label %for.cond
for.cond:
  %s.0 = phi i32 [ %a0, %entry ], [ %add1, %for.inc ]
  %a.0 = phi i32 [ %a0, %entry ], [ %add, %for.inc ]
  %i.0 = phi i32 [ 1, %entry ], [ %inc, %for.inc ]
  %cmp = icmp ult i32 %i.0, %n
  br i1 %cmp, label %for.body, label %for.end
for.body:
  %add = add i32 %a.0, %d
  %add1 = add i32 %s.0, %add
  br label %for.inc
for.inc:
  %inc = add i32 %i.0, 1
  br label %for.cond
for.end:
  ret i32 %s.0
}
)";

keq::llvmir::Module
parsedModule()
{
    keq::llvmir::Module module =
        keq::llvmir::parseModule(kArithmSeqSum);
    keq::llvmir::verifyModuleOrThrow(module);
    return module;
}

void
BM_IselLowering(benchmark::State &state)
{
    keq::llvmir::Module module = parsedModule();
    for (auto _ : state) {
        keq::isel::FunctionHints hints;
        benchmark::DoNotOptimize(keq::isel::lowerFunction(
            module, module.functions[0], {}, hints));
    }
}
BENCHMARK(BM_IselLowering);

void
BM_VcGeneration(benchmark::State &state)
{
    keq::llvmir::Module module = parsedModule();
    keq::isel::FunctionHints hints;
    keq::vx86::MFunction mfn = keq::isel::lowerFunction(
        module, module.functions[0], {}, hints);
    for (auto _ : state) {
        benchmark::DoNotOptimize(keq::vcgen::generateSyncPoints(
            module.functions[0], mfn, hints));
    }
}
BENCHMARK(BM_VcGeneration);

void
BM_FullValidation(benchmark::State &state)
{
    keq::llvmir::Module module = parsedModule();
    for (auto _ : state) {
        keq::driver::FunctionReport report =
            keq::driver::validateFunction(module, module.functions[0],
                                          {});
        if (report.outcome != keq::driver::Outcome::Succeeded)
            state.SkipWithError("validation failed");
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_FullValidation)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    using namespace keq;

    // One narrated run first: the Figure 2(b)/Figure 3 artifacts.
    llvmir::Module module = parsedModule();
    isel::FunctionHints hints;
    vx86::MFunction mfn =
        isel::lowerFunction(module, module.functions[0], {}, hints);
    vcgen::VcResult vc =
        vcgen::generateSyncPoints(module.functions[0], mfn, hints);
    driver::FunctionReport report =
        driver::validateFunction(module, module.functions[0], {});

    std::cout << "=== E4 / Figures 1-3: the running example ===\n\n";
    std::cout << mfn.toString() << "\n";
    std::cout << vc.points.render() << "\n";
    std::cout << "verdict: "
              << checker::verdictKindName(report.verdict.kind) << " ("
              << report.verdict.stats.solverQueries
              << " solver queries, "
              << report.verdict.stats.symbolicSteps
              << " symbolic steps)\n\n";
    if (report.outcome != driver::Outcome::Succeeded)
        return 1;

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
