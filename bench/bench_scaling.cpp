/**
 * @file
 * Experiment E8 — checker scaling ablation (paper Section 5.1
 * discussion: "Z3 solving time was the dominating factor ... path
 * conditions grow significantly, particularly with many complicated
 * memory operations and branching conditions").
 *
 * Sweeps validation time against three axes the discussion names:
 * straight-line length (term growth), branch count (path-condition
 * growth), and memory-operation count (store-chain growth).
 */

#include <sstream>

#include <benchmark/benchmark.h>

#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"

namespace {

using namespace keq;

/** n chained arithmetic instructions. */
std::string
straightLine(unsigned n)
{
    std::ostringstream os;
    os << "define i32 @f(i32 %p0, i32 %p1) {\nentry:\n";
    std::string prev = "%p0";
    for (unsigned i = 0; i < n; ++i) {
        std::string name = "%t" + std::to_string(i);
        const char *op = i % 3 == 0 ? "add" : i % 3 == 1 ? "xor" : "mul";
        os << "  " << name << " = " << op << " i32 " << prev << ", %p1\n";
        prev = name;
    }
    os << "  ret i32 " << prev << "\n}\n";
    return os.str();
}

/** n sequential diamonds (2^n paths, but per-segment only 2 branches). */
std::string
diamonds(unsigned n)
{
    std::ostringstream os;
    os << "define i32 @f(i32 %p0, i32 %p1) {\nentry:\n"
       << "  br label %b0\n";
    std::string carried = "%p0";
    for (unsigned i = 0; i < n; ++i) {
        std::string b = "b" + std::to_string(i);
        std::string next = "b" + std::to_string(i + 1);
        os << b << ":\n";
        os << "  %in" << i << " = phi i32 [ " << carried << ", "
           << (i == 0 ? std::string("%entry")
                      : "%b" + std::to_string(i - 1) + "j")
           << " ]\n";
        // Use a single-predecessor phi to keep SSA form simple.
        os << "  %c" << i << " = icmp ult i32 %in" << i << ", %p1\n";
        os << "  br i1 %c" << i << ", label %" << b << "t, label %" << b
           << "e\n";
        os << b << "t:\n  %vt" << i << " = add i32 %in" << i
           << ", 1\n  br label %" << b << "j\n";
        os << b << "e:\n  %ve" << i << " = xor i32 %in" << i
           << ", 255\n  br label %" << b << "j\n";
        os << b << "j:\n  %m" << i << " = phi i32 [ %vt" << i << ", %"
           << b << "t ], [ %ve" << i << ", %" << b << "e ]\n";
        os << "  br label %" << (i + 1 == n ? "done" : next) << "\n";
        carried = "%m" + std::to_string(i);
    }
    os << "done:\n  %r = phi i32 [ " << carried << ", %b"
       << (n - 1) << "j ]\n  ret i32 %r\n}\n";
    return os.str();
}

/** n stores followed by n loads through a global array. */
std::string
memoryOps(unsigned n)
{
    std::ostringstream os;
    os << "@g = external global [256 x i8]\n";
    os << "define i32 @f(i32 %p0) {\nentry:\n";
    for (unsigned i = 0; i < n; ++i) {
        os << "  %q" << i << " = getelementptr [256 x i8], "
           << "[256 x i8]* @g, i64 0, i64 " << (i * 7 % 256) << "\n";
        os << "  %v" << i << " = trunc i32 %p0 to i8\n";
        os << "  store i8 %v" << i << ", i8* %q" << i << "\n";
    }
    std::string acc = "%p0";
    for (unsigned i = 0; i < n; ++i) {
        os << "  %l" << i << " = load i8, i8* %q" << (n - 1 - i)
           << "\n";
        os << "  %w" << i << " = zext i8 %l" << i << " to i32\n";
        os << "  %a" << i << " = add i32 " << acc << ", %w" << i
           << "\n";
        acc = "%a" + std::to_string(i);
    }
    os << "  ret i32 " << acc << "\n}\n";
    return os.str();
}

void
validateOnce(benchmark::State &state, const std::string &source)
{
    llvmir::Module module = llvmir::parseModule(source);
    for (auto _ : state) {
        driver::FunctionReport report =
            driver::validateFunction(module, module.functions.back(),
                                     {});
        if (report.outcome != driver::Outcome::Succeeded)
            state.SkipWithError(report.detail.c_str());
        benchmark::DoNotOptimize(report);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_StraightLine(benchmark::State &state)
{
    validateOnce(state,
                 straightLine(static_cast<unsigned>(state.range(0))));
}
BENCHMARK(BM_StraightLine)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void
BM_BranchChains(benchmark::State &state)
{
    validateOnce(state, diamonds(static_cast<unsigned>(state.range(0))));
}
// Sequential diamonds have no loop, hence no intermediate sync points:
// the number of cut-to-cut paths doubles per diamond, and validation
// cost grows exponentially (the "path conditions grow significantly"
// effect of Section 5.1). The sweep stops at 8 diamonds (2^8 paths).
BENCHMARK(BM_BranchChains)
    ->RangeMultiplier(2)
    ->Range(1, 8)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void
BM_MemoryOps(benchmark::State &state)
{
    validateOnce(state, memoryOps(static_cast<unsigned>(state.range(0))));
}
BENCHMARK(BM_MemoryOps)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

} // namespace

BENCHMARK_MAIN();
