/**
 * @file
 * Experiment E9 — micro-costs of the concrete Algorithm 1 (paper
 * Section 8) on random finite cut transition systems.
 *
 * Measures the three ingredients separately: cut-successor computation
 * (function next_i), the full check over a candidate relation, and the
 * reference greatest-fixpoint construction used only in testing — the
 * gap between the last two is the reason witness-checking (the paper's
 * approach) beats bisimulation inference (the stuttering-bisimulation
 * O(m log n) route discussed in Section 2).
 */

#include <benchmark/benchmark.h>

#include "src/core/reference.h"
#include "src/support/rng.h"

namespace {

using namespace keq::core;
using keq::support::Rng;

/** Random system with a valid cut (repair loop as in the tests). */
ExplicitTransitionSystem
randomSystem(uint64_t seed, size_t num_states)
{
    Rng rng(seed);
    ExplicitTransitionSystem ts;
    for (size_t i = 0; i < num_states; ++i) {
        ts.addState(std::string(1, static_cast<char>('a' + rng.below(2))),
                    rng.chancePercent(50));
    }
    for (size_t i = 0; i < num_states; ++i) {
        unsigned degree = static_cast<unsigned>(rng.below(3));
        for (unsigned e = 0; e < degree; ++e) {
            ts.addTransition(static_cast<StateId>(i),
                             static_cast<StateId>(
                                 rng.below(num_states)));
        }
    }
    ts.setInitial(0);
    ts.setCut(0, true);
    while (!ts.validateCut().valid)
        ts.setCut(static_cast<StateId>(rng.below(num_states)), true);
    return ts;
}

void
BM_CutSuccessors(benchmark::State &state)
{
    ExplicitTransitionSystem ts =
        randomSystem(7, static_cast<size_t>(state.range(0)));
    std::vector<StateId> cuts = ts.cutStates();
    for (auto _ : state) {
        for (StateId cut : cuts)
            benchmark::DoNotOptimize(cutSuccessors(ts, cut));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CutSuccessors)->Range(16, 4096)->Complexity();

void
BM_Algorithm1Check(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    ExplicitTransitionSystem t1 = randomSystem(11, n);
    ExplicitTransitionSystem t2 = randomSystem(11, n); // same seed: twin
    PairRelation identity;
    for (StateId cut : t1.cutStates())
        identity.add(cut, cut);
    for (auto _ : state) {
        CheckOutcome outcome = checkCutBisimulation(t1, t2, identity);
        if (!outcome.holds)
            state.SkipWithError("identity relation rejected");
        benchmark::DoNotOptimize(outcome);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Algorithm1Check)->Range(16, 1024)->Complexity();

void
BM_LargestBisimulationInference(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    ExplicitTransitionSystem t1 = randomSystem(13, n);
    ExplicitTransitionSystem t2 = randomSystem(17, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            largestCutBisimulation(t1, t2, labelEquality));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LargestBisimulationInference)->Range(16, 256)->Complexity();

} // namespace

BENCHMARK_MAIN();
