/**
 * @file
 * Experiment E13 — conformance-matrix throughput (no paper
 * counterpart; the differential conformance harness of DESIGN.md §12).
 *
 * Runs the checked-in corpus (tests/corpus) through the configuration
 * matrix and reports wall-clock per (file, cell) validation, the
 * verdict-identity outcome, and the coverage ledger totals. The bench
 * doubles as a release-shaped rehearsal of the `conformance` ctest
 * gate: it fails loudly on any EXPECT mismatch, any cross-cell verdict
 * divergence, or an incomplete opcode ledger.
 *
 * Scale knobs: KEQ_CONFORMANCE_FULL=1 runs the full 16-cell matrix
 * (default is the 4-cell quick diagonal).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/conformance/corpus.h"
#include "src/conformance/runner.h"
#include "src/support/stopwatch.h"

namespace {

/** "sandbox=1 cache=0 smtopt=1 jobs=4" -> "s1_c0_o1_j4" (JSON key). */
std::string
cellKey(const keq::conformance::MatrixCell &cell)
{
    std::string key = "s";
    key += cell.sandbox ? '1' : '0';
    key += "_c";
    key += cell.cache ? '1' : '0';
    key += "_o";
    key += cell.smtOpt ? '1' : '0';
    key += "_j";
    key += std::to_string(cell.jobs);
    return key;
}

} // namespace

int
main()
{
    using namespace keq;

    bool full = bench::envSize("KEQ_CONFORMANCE_FULL", 0) != 0;

    std::vector<conformance::CorpusCase> cases =
        conformance::loadCorpusDir(KEQ_CORPUS_DIR);

    conformance::RunnerOptions options;
    options.matrix = full ? conformance::fullMatrix()
                          : conformance::quickMatrix();
    options.workerPath = KEQ_WORKER_BIN;

    std::cout << "=== E13: conformance matrix throughput ===\n";
    std::cout << "corpus: " << cases.size() << " files, "
              << options.matrix.size() << " configuration cells ("
              << (full ? "full" : "quick") << " matrix)\n\n";

    conformance::ConformanceReport report =
        conformance::runConformance(cases, options);

    std::cout << report.renderTable() << "\n";
    std::cout << report.coverage.report();

    size_t validations = cases.size() * options.matrix.size();
    double per_validation =
        validations > 0 ? report.seconds / static_cast<double>(
                                               validations)
                        : 0.0;
    std::printf("\n%zu validations in %.2f s (%.1f ms each)\n",
                validations, report.seconds, per_validation * 1e3);

    // Per-cell wall-clock breakdown: the same corpus timed one
    // configuration at a time, so the cost of each knob (sandbox IPC,
    // cache, the smt-opt stack, parallelism) is visible in isolation.
    std::printf("\nper-cell breakdown:\n");
    std::vector<std::pair<std::string, double>> cell_seconds;
    for (const conformance::MatrixCell &cell : options.matrix) {
        support::Stopwatch watch;
        for (const conformance::CorpusCase &corpus_case : cases)
            conformance::runCase(corpus_case, cell, options);
        double seconds = watch.seconds();
        cell_seconds.emplace_back(cellKey(cell), seconds);
        std::printf("  [%s] %6.2f s (%5.1f ms/file)\n",
                    cell.label().c_str(), seconds,
                    cases.empty()
                        ? 0.0
                        : seconds * 1e3 /
                              static_cast<double>(cases.size()));
    }

    bool coverage_complete = report.coverage.uncoveredOpcodes().empty();
    bool ok = report.allOk() && !report.degradedSandbox &&
              coverage_complete;
    if (!ok)
        std::cerr << "FAIL: conformance matrix not clean (mismatches="
                  << report.expectMismatches() << " inconsistencies="
                  << report.matrixInconsistencies() << " degraded="
                  << (report.degradedSandbox ? 1 : 0)
                  << " opcode-coverage="
                  << (coverage_complete ? "full" : "INCOMPLETE")
                  << ")\n";

    bench::JsonReporter json;
    json.field("bench", std::string("conformance"));
    json.field("files", uint64_t{cases.size()});
    json.field("cells", uint64_t{options.matrix.size()});
    json.field("full_matrix", full);
    json.field("seconds", report.seconds);
    json.field("seconds_per_validation", per_validation);
    json.field("expect_mismatches", uint64_t{report.expectMismatches()});
    json.field("matrix_inconsistencies",
               uint64_t{report.matrixInconsistencies()});
    json.field("degraded_sandbox", report.degradedSandbox);
    json.field("instructions_recorded",
               report.coverage.totalInstructions());
    json.field("uncovered_opcodes",
               uint64_t{report.coverage.uncoveredOpcodes().size()});
    json.field("uncovered_preds",
               uint64_t{report.coverage.uncoveredPreds().size()});
    json.field("uncovered_shapes",
               uint64_t{report.coverage.uncoveredShapes().size()});
    for (const auto &[key, seconds] : cell_seconds)
        json.field("cell_" + key + "_seconds", seconds);
    json.writeFile("BENCH_conformance.json");
    return ok ? 0 : 1;
}
