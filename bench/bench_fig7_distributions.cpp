/**
 * @file
 * Experiments E2 and E3 — reproduce Figure 7: "Distributions of
 * validation time and code size" (paper Section 5.1).
 *
 * The paper reports a heavily right-skewed validation-time distribution
 * (mean 150 s, median 0.8 s at their scale) and a code-size histogram
 * dominated by small functions. This harness validates the synthetic
 * corpus without budgets and prints both histograms plus the summary
 * statistics; the *shape* (median << mean, long right tail) is the
 * reproduction target — absolute numbers are hardware- and scale-bound.
 *
 * Scale with KEQ_FIG7_FUNCTIONS.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/support/histogram.h"

int
main()
{
    using namespace keq;

    size_t function_count = bench::envSize("KEQ_FIG7_FUNCTIONS", 600);
    driver::CorpusOptions copts;
    copts.functionCount = function_count;
    copts.seed = 0x716; // fixed corpus

    std::cout << "=== E2+E3 / Figure 7: distributions ===\n";
    std::cout << "corpus: " << function_count
              << " functions (seed " << copts.seed << ")\n\n";

    driver::ModuleReport report =
        driver::validateSource(driver::generateCorpusSource(copts), {});

    support::Histogram time_hist =
        support::Histogram::logSpaced(0.0001, 4.0, 12);
    support::Histogram size_hist =
        support::Histogram::logSpaced(1.0, 2.0, 12);
    for (const driver::FunctionReport &fn : report.functions) {
        if (fn.outcome == driver::Outcome::Unsupported)
            continue;
        time_hist.add(fn.seconds);
        size_hist.add(static_cast<double>(fn.llvmInstructions));
    }

    std::cout << "--- validation time per function ---\n";
    std::cout << time_hist.render("s");
    std::printf("mean %.3f s, median %.3f s, p95 %.3f s, max %.3f s\n",
                time_hist.mean(), time_hist.median(),
                time_hist.percentile(95), time_hist.max());
    std::printf("(paper at their scale: mean 150 s, median 0.8 s — the "
                "reproduction target is median << mean with a long "
                "right tail: ratio here %.0fx)\n\n",
                time_hist.mean() / std::max(1e-9, time_hist.median()));

    std::cout << "--- code size (LLVM instructions) per function ---\n";
    std::cout << size_hist.render(" insts");
    std::printf("mean %.1f, median %.1f, max %.0f instructions\n",
                size_hist.mean(), size_hist.median(), size_hist.max());
    return 0;
}
