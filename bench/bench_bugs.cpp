/**
 * @file
 * Experiments E5 and E6 — the Section 5.2 bug studies.
 *
 * Reintroduces the two real Instruction Selection miscompilations
 * (PR25154 write-after-write store merging, PR4737 load widening) and
 * shows the TV system rejects exactly the buggy translations while
 * accepting the correct ones — the table the paper walks through with
 * Figures 8-11.
 *
 * The bug definitions live in the shared fuzz::MutationCatalog: each
 * IselBug entry carries the exemplar program, the correct-peephole
 * lowering, and the buggy one, so this bench, the fuzz campaign, and
 * the kill-guarantee tests all exercise the very same configurations.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/driver/pipeline.h"
#include "src/fuzz/mutation_catalog.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"

namespace {

struct Row
{
    std::string experiment;
    std::string configuration;
    const char *source;
    const char *function;
    keq::isel::IselOptions isel;
    bool expect_validated;
};

/** Paper labels for the catalogue's reintroduced-bug entries. */
const std::map<std::string, const char *> kExperimentLabels = {
    {"waw-store-merge", "E5 (Fig 8/9, PR25154)"},
    {"load-widening", "E6 (Fig 10/11, PR4737)"},
};

} // namespace

int
main()
{
    using namespace keq;

    std::vector<Row> rows;
    for (const fuzz::Mutation &mutation : fuzz::mutationCatalog()) {
        if (mutation.kind != fuzz::MutationKind::IselBug)
            continue;
        auto label = kExperimentLabels.find(mutation.id);
        const char *experiment = label != kExperimentLabels.end()
                                     ? label->second
                                     : mutation.id;
        // Three configurations per bug: the plain lowering (peephole
        // off), the corrected peephole, and the reintroduced bug.
        rows.push_back({experiment, "plain lowering", mutation.exemplar,
                        mutation.exemplarFunction, {}, true});
        rows.push_back({experiment, "correct peephole",
                        mutation.exemplar, mutation.exemplarFunction,
                        mutation.cleanOptions, true});
        rows.push_back({experiment,
                        std::string("BUGGY: ") + mutation.description,
                        mutation.exemplar, mutation.exemplarFunction,
                        mutation.buggyOptions, false});
    }

    std::cout << "=== E5+E6 / Section 5.2: reintroduced ISel bugs ===\n\n";
    std::cout << "experiment            | configuration                  "
                 "      | verdict        | expected\n";
    std::cout << "----------------------+-------------------------------"
                 "-------+----------------+---------\n";
    int failures = 0;
    double total_seconds = 0.0;
    for (const Row &row : rows) {
        llvmir::Module module = llvmir::parseModule(row.source);
        llvmir::verifyModuleOrThrow(module);
        const llvmir::Function *fn = module.findFunction(row.function);
        if (fn == nullptr) {
            std::cerr << "missing function " << row.function << "\n";
            return 1;
        }
        driver::PipelineOptions options;
        options.isel = row.isel;
        driver::FunctionReport report =
            driver::validateFunction(module, *fn, options);
        total_seconds += report.seconds;
        bool validated =
            report.outcome == driver::Outcome::Succeeded;
        bool ok = validated == row.expect_validated;
        failures += ok ? 0 : 1;
        std::printf("%-21s | %-37.37s | %-14s | %s %s\n",
                    row.experiment.c_str(), row.configuration.c_str(),
                    checker::verdictKindName(report.verdict.kind),
                    row.expect_validated ? "accept" : "reject",
                    ok ? "(OK)" : "(MISMATCH)");
        if (!validated && !report.detail.empty())
            std::cout << "    counterexample: " << report.detail << "\n";
    }
    std::printf("\ntotal validation time: %.2f s\n", total_seconds);
    std::cout << (failures == 0
                      ? "All verdicts match Section 5.2.\n"
                      : "MISMATCHES against the paper!\n");
    return failures;
}
