/**
 * @file
 * Experiments E5 and E6 — the Section 5.2 bug studies.
 *
 * Reintroduces the two real Instruction Selection miscompilations
 * (PR25154 write-after-write store merging, PR4737 load widening) and
 * shows the TV system rejects exactly the buggy translations while
 * accepting the correct ones — the table the paper walks through with
 * Figures 8-11.
 */

#include <iostream>

#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"

namespace {

const char *const kWawProgram = R"(
@b = external global [8 x i8]
define void @foo() {
entry:
  %p2 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 2
  %p2w = bitcast i8* %p2 to i16*
  store i16 0, i16* %p2w
  %p3 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 3
  %p3w = bitcast i8* %p3 to i16*
  store i16 2, i16* %p3w
  %p0 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 0
  %p0w = bitcast i8* %p0 to i16*
  store i16 1, i16* %p0w
  ret void
}
)";

const char *const kLoadNarrowProgram = R"(
@a = external global [12 x i8]
@b = external global i64
define void @narrow() {
entry:
  %p = getelementptr inbounds [12 x i8], [12 x i8]* @a, i64 0, i64 8
  %pw = bitcast i8* %p to i32*
  %v = load i32, i32* %pw
  %w = zext i32 %v to i64
  store i64 %w, i64* @b
  ret void
}
)";

struct Row
{
    const char *experiment;
    const char *configuration;
    const char *source;
    keq::isel::IselOptions isel;
    bool expect_validated;
};

} // namespace

int
main()
{
    using namespace keq;
    using isel::Bug;

    std::vector<Row> rows;
    {
        Row row{"E5 (Fig 8/9, PR25154)", "plain lowering", kWawProgram,
                {}, true};
        rows.push_back(row);
        row.configuration = "correct store merging";
        row.isel.mergeStores = true;
        rows.push_back(row);
        row.configuration = "BUGGY store merging (WAW reorder)";
        row.isel.bug = Bug::StoreMergeWAW;
        row.expect_validated = false;
        rows.push_back(row);
    }
    {
        Row row{"E6 (Fig 10/11, PR4737)", "correct zext(load) folding",
                kLoadNarrowProgram, {}, true};
        row.isel.foldExtLoad = true;
        rows.push_back(row);
        row.configuration = "BUGGY load widening (OOB read)";
        row.isel.bug = Bug::LoadWidening;
        row.expect_validated = false;
        rows.push_back(row);
    }

    std::cout << "=== E5+E6 / Section 5.2: reintroduced ISel bugs ===\n\n";
    std::cout << "experiment            | configuration                  "
                 "      | verdict        | expected\n";
    std::cout << "----------------------+-------------------------------"
                 "-------+----------------+---------\n";
    int failures = 0;
    double total_seconds = 0.0;
    for (const Row &row : rows) {
        llvmir::Module module = llvmir::parseModule(row.source);
        llvmir::verifyModuleOrThrow(module);
        driver::PipelineOptions options;
        options.isel = row.isel;
        driver::FunctionReport report = driver::validateFunction(
            module, module.functions.front(), options);
        total_seconds += report.seconds;
        bool validated =
            report.outcome == driver::Outcome::Succeeded;
        bool ok = validated == row.expect_validated;
        failures += ok ? 0 : 1;
        std::printf("%-21s | %-37s | %-14s | %s %s\n", row.experiment,
                    row.configuration,
                    checker::verdictKindName(report.verdict.kind),
                    row.expect_validated ? "accept" : "reject",
                    ok ? "(OK)" : "(MISMATCH)");
        if (!validated && !report.detail.empty())
            std::cout << "    counterexample: " << report.detail << "\n";
    }
    std::printf("\ntotal validation time: %.2f s\n", total_seconds);
    std::cout << (failures == 0
                      ? "All verdicts match Section 5.2.\n"
                      : "MISMATCHES against the paper!\n");
    return failures;
}
