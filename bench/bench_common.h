#ifndef KEQ_BENCH_BENCH_COMMON_H
#define KEQ_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the evaluation harness binaries.
 *
 * Every bench is deterministic in its corpus seed; scale knobs can be
 * overridden through environment variables so the full paper-scale runs
 * (4732 functions, as in Section 5.1) are one `KEQ_FIG6_FUNCTIONS=4732`
 * away while the default invocation stays laptop-fast.
 */

#include <cstdlib>
#include <string>

namespace keq::bench {

/** Reads a size_t environment override with a default. */
inline size_t
envSize(const char *name, size_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

/** Reads a double environment override with a default. */
inline double
envDouble(const char *name, double fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    return std::strtod(value, nullptr);
}

} // namespace keq::bench

#endif // KEQ_BENCH_BENCH_COMMON_H
