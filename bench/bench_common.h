#ifndef KEQ_BENCH_BENCH_COMMON_H
#define KEQ_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the evaluation harness binaries.
 *
 * Every bench is deterministic in its corpus seed; scale knobs can be
 * overridden through environment variables so the full paper-scale runs
 * (4732 functions, as in Section 5.1) are one `KEQ_FIG6_FUNCTIONS=4732`
 * away while the default invocation stays laptop-fast.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace keq::bench {

/** Reads a size_t environment override with a default. */
inline size_t
envSize(const char *name, size_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

/** Reads a double environment override with a default. */
inline double
envDouble(const char *name, double fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    return std::strtod(value, nullptr);
}

/**
 * Machine-readable bench output: a flat, insertion-ordered JSON object
 * written next to the binary (or into $KEQ_BENCH_JSON_DIR), so CI and
 * the plotting scripts can track results across commits without
 * scraping the human-readable tables.
 */
class JsonReporter
{
  public:
    void field(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", value);
        fields_.emplace_back(key, buf);
    }

    void field(const std::string &key, uint64_t value)
    {
        fields_.emplace_back(key, std::to_string(value));
    }

    void field(const std::string &key, bool value)
    {
        fields_.emplace_back(key, value ? "true" : "false");
    }

    void field(const std::string &key, const std::string &value)
    {
        fields_.emplace_back(key, "\"" + escape(value) + "\"");
    }

    /** Renders the object; keys keep insertion order. */
    std::string render() const
    {
        std::string out = "{";
        for (size_t i = 0; i < fields_.size(); ++i) {
            if (i > 0)
                out += ",";
            out += "\n  \"" + escape(fields_[i].first)
                   + "\": " + fields_[i].second;
        }
        out += "\n}\n";
        return out;
    }

    /**
     * Writes the object to @p filename inside $KEQ_BENCH_JSON_DIR
     * (default: the working directory). Returns false on I/O failure —
     * benches report it but do not fail the run over it.
     */
    bool writeFile(const std::string &filename) const
    {
        const char *dir = std::getenv("KEQ_BENCH_JSON_DIR");
        std::string path = dir != nullptr && *dir != '\0'
                               ? std::string(dir) + "/" + filename
                               : filename;
        std::FILE *file = std::fopen(path.c_str(), "w");
        if (file == nullptr)
            return false;
        std::string text = render();
        size_t written =
            std::fwrite(text.data(), 1, text.size(), file);
        bool ok = written == text.size() && std::fclose(file) == 0;
        if (ok)
            std::printf("wrote %s\n", path.c_str());
        return ok;
    }

  private:
    static std::string escape(const std::string &raw)
    {
        std::string out;
        for (char c : raw) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    std::vector<std::pair<std::string, std::string>> fields_;
};

} // namespace keq::bench

#endif // KEQ_BENCH_BENCH_COMMON_H
