/**
 * @file
 * Fuzzing-throughput baseline: runs the same fixed-seed campaign at
 * --jobs 1 and --jobs N and reports generate->mutate->cross-check
 * throughput (programs/second), plus the campaign's health counters.
 *
 * Doubles as an end-to-end determinism check: the serial and parallel
 * runs must produce byte-identical canonical summaries, and every
 * miscompile class in the mutation catalogue must be killed.
 *
 * Scale knobs:
 *   KEQ_FUZZ_ITERATIONS  random-phase iterations (default 60)
 *   KEQ_FUZZ_SEED        campaign seed (default 1)
 *
 * Writes BENCH_fuzz.json (see bench_common.h for the output directory).
 */

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "src/fuzz/campaign.h"

int
main()
{
    using namespace keq;

    fuzz::CampaignOptions options;
    options.seed = keq::bench::envSize("KEQ_FUZZ_SEED", 1);
    options.iterations = keq::bench::envSize("KEQ_FUZZ_ITERATIONS", 60);

    unsigned hw = std::thread::hardware_concurrency();
    unsigned jobs_n = hw > 1 ? hw : 2;

    std::printf("=== keq-fuzz throughput (seed=%llu, %zu iterations) "
                "===\n\n",
                static_cast<unsigned long long>(options.seed),
                options.iterations);

    options.jobs = 1;
    fuzz::CampaignResult serial = fuzz::runCampaign(options);
    std::printf("jobs=1:  %6.2f s  %7.2f programs/s\n", serial.seconds,
                serial.seconds > 0.0
                    ? static_cast<double>(
                          serial.stats.programsGenerated) /
                          serial.seconds
                    : 0.0);

    options.jobs = jobs_n;
    fuzz::CampaignResult parallel = fuzz::runCampaign(options);
    double parallel_rate =
        parallel.seconds > 0.0
            ? static_cast<double>(parallel.stats.programsGenerated) /
                  parallel.seconds
            : 0.0;
    std::printf("jobs=%-2u: %6.2f s  %7.2f programs/s  (%.2fx)\n",
                jobs_n, parallel.seconds, parallel_rate,
                serial.seconds > 0.0 && parallel.seconds > 0.0
                    ? serial.seconds / parallel.seconds
                    : 0.0);

    bool deterministic =
        serial.canonicalSummary() == parallel.canonicalSummary();
    bool classes_killed = serial.allMiscompileClassesKilled();
    std::printf("\ndeterministic across jobs: %s\n",
                deterministic ? "yes" : "NO (BUG)");
    std::printf("all miscompile classes killed: %s\n",
                classes_killed ? "yes" : "NO (BUG)");
    std::printf("soundness bugs: %llu, completeness gaps: %llu\n",
                static_cast<unsigned long long>(
                    serial.stats.soundnessBugs),
                static_cast<unsigned long long>(
                    serial.stats.completenessGaps));

    keq::bench::JsonReporter json;
    json.field("seed", static_cast<uint64_t>(options.seed));
    json.field("iterations",
               static_cast<uint64_t>(serial.iterationsRun));
    json.field("programs", serial.stats.programsGenerated);
    json.field("instructions", serial.stats.generatedInstructions);
    json.field("baseline_validated", serial.stats.baselineValidated);
    json.field("baseline_unvalidated",
               serial.stats.baselineUnvalidated);
    json.field("mutants_applied", serial.stats.mutantsApplied);
    json.field("mutants_killed", serial.stats.mutantsKilled);
    json.field("mutants_neutral",
               serial.stats.mutantsSurvivedNeutral);
    json.field("benign_accepted", serial.stats.benignAccepted);
    json.field("soundness_bugs", serial.stats.soundnessBugs);
    json.field("completeness_gaps", serial.stats.completenessGaps);
    json.field("seconds_jobs1", serial.seconds);
    json.field("programs_per_second_jobs1",
               serial.seconds > 0.0
                   ? static_cast<double>(
                         serial.stats.programsGenerated) /
                         serial.seconds
                   : 0.0);
    json.field("jobs_n", static_cast<uint64_t>(jobs_n));
    json.field("seconds_jobsn", parallel.seconds);
    json.field("programs_per_second_jobsn", parallel_rate);
    json.field("deterministic_across_jobs", deterministic);
    json.field("all_classes_killed", classes_killed);
    json.writeFile("BENCH_fuzz.json");

    return static_cast<int>(serial.stats.soundnessBugs +
                            serial.stats.completenessGaps) +
           (deterministic ? 0 : 1) + (classes_killed ? 0 : 1);
}
