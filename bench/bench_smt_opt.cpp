/**
 * @file
 * Experiment E7 — the Section 3 SMT query optimization ablation.
 *
 * The paper replaces the negative-form query unsat(phi1 && !phi2) by the
 * positive form unsat(phi1 && (phi2' || phi2'' || ...)) over the sibling
 * path conditions of a deterministic semantics, reporting that Z3 solves
 * the positive form much faster.
 *
 * Two measurements:
 *  1. End-to-end: the same corpus validated with the optimization on and
 *     off (checker-level switch), comparing total solver time and query
 *     counts.
 *  2. Micro: google-benchmark timing of the two query forms on
 *     synthetic path-condition families of growing width.
 */

#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"

namespace {

using namespace keq;

/** Builds a family of disjoint, total branch conditions over k nested
 *  comparisons, mimicking a k-way cut-successor family. */
std::vector<smt::Term>
conditionFamily(smt::TermFactory &tf, unsigned k)
{
    smt::Term x = tf.var("x", smt::Sort::bitVec(64));
    smt::Term m = tf.var("m", smt::Sort::memArray());
    std::vector<smt::Term> family;
    smt::Term rest = tf.trueTerm();
    for (unsigned i = 0; i < k; ++i) {
        // Conditions also mention memory bytes so the negation carries
        // array terms (the expensive case the paper describes).
        smt::Term byte =
            tf.select(m, tf.bvAdd(x, tf.bvConst(64, i)));
        smt::Term cond = tf.mkAnd(
            tf.bvUlt(tf.zext(byte, 64), tf.bvConst(64, 77 + i)),
            tf.bvUlt(x, tf.bvConst(64, 1000 + 13 * i)));
        family.push_back(tf.mkAnd(rest, cond));
        rest = tf.mkAnd(rest, tf.mkNot(cond));
    }
    family.push_back(rest);
    return family;
}

void
BM_NegativeForm(benchmark::State &state)
{
    smt::TermFactory tf;
    smt::Z3Solver solver(tf);
    unsigned k = static_cast<unsigned>(state.range(0));
    std::vector<smt::Term> family = conditionFamily(tf, k);
    smt::Term phi1 = family[0];
    for (auto _ : state) {
        // unsat(phi1 && !phi1') where phi1' is the matching sibling:
        // modelled as phi1 itself (valid implication, worst-case form).
        benchmark::DoNotOptimize(
            solver.checkSat({tf.mkAnd(phi1, tf.mkNot(family[0]))}));
        // Plus one genuine cross check against another member.
        benchmark::DoNotOptimize(
            solver.checkSat({tf.mkAnd(phi1, tf.mkNot(family[1]))}));
    }
    state.counters["queries"] =
        static_cast<double>(solver.stats().queries);
}
BENCHMARK(BM_NegativeForm)->Arg(2)->Arg(4)->Arg(8);

void
BM_PositiveForm(benchmark::State &state)
{
    smt::TermFactory tf;
    smt::Z3Solver solver(tf);
    unsigned k = static_cast<unsigned>(state.range(0));
    std::vector<smt::Term> family = conditionFamily(tf, k);
    smt::Term phi1 = family[0];
    for (auto _ : state) {
        // unsat(phi1 && OR(siblings)) — the Section 3 positive form.
        smt::Term siblings = tf.falseTerm();
        for (size_t j = 1; j < family.size(); ++j)
            siblings = tf.mkOr(siblings, family[j]);
        benchmark::DoNotOptimize(
            solver.checkSat({tf.mkAnd(phi1, siblings)}));
        smt::Term siblings_of_1 = tf.falseTerm();
        for (size_t j = 0; j < family.size(); ++j) {
            if (j != 1)
                siblings_of_1 = tf.mkOr(siblings_of_1, family[j]);
        }
        benchmark::DoNotOptimize(
            solver.checkSat({tf.mkAnd(phi1, siblings_of_1)}));
    }
    state.counters["queries"] =
        static_cast<double>(solver.stats().queries);
}
BENCHMARK(BM_PositiveForm)->Arg(2)->Arg(4)->Arg(8);

} // namespace

int
main(int argc, char **argv)
{
    size_t function_count = bench::envSize("KEQ_SMTOPT_FUNCTIONS", 150);
    driver::CorpusOptions copts;
    copts.functionCount = function_count;
    copts.seed = 0x5a7; // fixed

    std::cout << "=== E7 / Section 3: SMT query optimization ===\n\n";
    std::string source = driver::generateCorpusSource(copts);

    auto run = [&](bool positive) {
        driver::PipelineOptions options;
        options.checker.positiveFormOpt = positive;
        driver::ModuleReport report =
            driver::validateSource(source, options);
        uint64_t queries = 0;
        double solver_seconds = 0.0;
        size_t succeeded = report.countOutcome(
            driver::Outcome::Succeeded);
        for (const driver::FunctionReport &fn : report.functions) {
            queries += fn.verdict.stats.solverQueries;
            solver_seconds += fn.verdict.stats.solverSeconds;
        }
        std::printf("%s form: %zu/%zu validated, %llu queries, "
                    "%.3f s solver time\n",
                    positive ? "positive" : "negative", succeeded,
                    report.functions.size(),
                    static_cast<unsigned long long>(queries),
                    solver_seconds);
        return solver_seconds;
    };

    double neg = run(false);
    double pos = run(true);
    std::printf("solver-time ratio negative/positive: %.2fx\n\n",
                neg / std::max(1e-9, pos));

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
