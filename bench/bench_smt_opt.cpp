/**
 * @file
 * Experiment E7 — the Section 3 SMT query optimization ablation — plus
 * the optimization-stack benchmark for the incremental backend.
 *
 * Part 1 (optimization stack): the Figure 6 corpus validated twice
 * through identically-configured pipelines, once with the PR 1 stack
 * (cached serial, cold Z3 per query, no preprocessing) and once with the
 * full stack (rewrite engine -> cone slicer -> cache -> incremental Z3).
 * The harness *asserts* verdict identity — the stack must shift timings,
 * never outcomes — then reports the per-function geomean speedup and the
 * per-stage attribution of where queries were resolved.
 *
 * Part 2 (E7 proper): the paper replaces the negative-form query
 * unsat(phi1 && !phi2) by the positive form
 * unsat(phi1 && (phi2' || phi2'' || ...)) over the sibling path
 * conditions of a deterministic semantics, reporting that Z3 solves the
 * positive form much faster. Measured end-to-end on a corpus and micro
 * on synthetic path-condition families of growing width.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"
#include "src/support/stopwatch.h"

namespace {

using namespace keq;

/** Builds a family of disjoint, total branch conditions over k nested
 *  comparisons, mimicking a k-way cut-successor family. */
std::vector<smt::Term>
conditionFamily(smt::TermFactory &tf, unsigned k)
{
    smt::Term x = tf.var("x", smt::Sort::bitVec(64));
    smt::Term m = tf.var("m", smt::Sort::memArray());
    std::vector<smt::Term> family;
    smt::Term rest = tf.trueTerm();
    for (unsigned i = 0; i < k; ++i) {
        // Conditions also mention memory bytes so the negation carries
        // array terms (the expensive case the paper describes).
        smt::Term byte =
            tf.select(m, tf.bvAdd(x, tf.bvConst(64, i)));
        smt::Term cond = tf.mkAnd(
            tf.bvUlt(tf.zext(byte, 64), tf.bvConst(64, 77 + i)),
            tf.bvUlt(x, tf.bvConst(64, 1000 + 13 * i)));
        family.push_back(tf.mkAnd(rest, cond));
        rest = tf.mkAnd(rest, tf.mkNot(cond));
    }
    family.push_back(rest);
    return family;
}

void
BM_NegativeForm(benchmark::State &state)
{
    smt::TermFactory tf;
    smt::Z3Solver solver(tf);
    unsigned k = static_cast<unsigned>(state.range(0));
    std::vector<smt::Term> family = conditionFamily(tf, k);
    smt::Term phi1 = family[0];
    for (auto _ : state) {
        // unsat(phi1 && !phi1') where phi1' is the matching sibling:
        // modelled as phi1 itself (valid implication, worst-case form).
        benchmark::DoNotOptimize(
            solver.checkSat({tf.mkAnd(phi1, tf.mkNot(family[0]))}));
        // Plus one genuine cross check against another member.
        benchmark::DoNotOptimize(
            solver.checkSat({tf.mkAnd(phi1, tf.mkNot(family[1]))}));
    }
    state.counters["queries"] =
        static_cast<double>(solver.stats().queries);
}
BENCHMARK(BM_NegativeForm)->Arg(2)->Arg(4)->Arg(8);

void
BM_PositiveForm(benchmark::State &state)
{
    smt::TermFactory tf;
    smt::Z3Solver solver(tf);
    unsigned k = static_cast<unsigned>(state.range(0));
    std::vector<smt::Term> family = conditionFamily(tf, k);
    smt::Term phi1 = family[0];
    for (auto _ : state) {
        // unsat(phi1 && OR(siblings)) — the Section 3 positive form.
        smt::Term siblings = tf.falseTerm();
        for (size_t j = 1; j < family.size(); ++j)
            siblings = tf.mkOr(siblings, family[j]);
        benchmark::DoNotOptimize(
            solver.checkSat({tf.mkAnd(phi1, siblings)}));
        smt::Term siblings_of_1 = tf.falseTerm();
        for (size_t j = 0; j < family.size(); ++j) {
            if (j != 1)
                siblings_of_1 = tf.mkOr(siblings_of_1, family[j]);
        }
        benchmark::DoNotOptimize(
            solver.checkSat({tf.mkAnd(phi1, siblings_of_1)}));
    }
    state.counters["queries"] =
        static_cast<double>(solver.stats().queries);
}
BENCHMARK(BM_PositiveForm)->Arg(2)->Arg(4)->Arg(8);

} // namespace

/**
 * The optimization-stack comparison: PR 1 cached-serial baseline vs the
 * full rewrite/slice/incremental stack on the Figure 6 corpus. Returns
 * false when the two runs disagree on any verdict (the harness's hard
 * failure).
 */
bool
runStackComparison()
{
    using namespace keq;

    size_t function_count = bench::envSize("KEQ_SMT_FUNCTIONS", 120);
    driver::CorpusOptions copts;
    copts.functionCount = function_count;
    copts.seed = 0x6cc2006; // the Figure 6 corpus
    llvmir::Module module =
        llvmir::parseModule(driver::generateCorpusSource(copts));
    llvmir::verifyModuleOrThrow(module);

    driver::PipelineOptions options; // no wall budgets: verdicts must
                                     // be timing-independent

    std::cout << "=== SMT optimization stack: rewrite + slice + "
                 "incremental Z3 ===\n";
    std::cout << "corpus: " << function_count
              << " Figure 6 functions (seed " << copts.seed << ")\n\n";

    // Baseline: the PR 1 stack — shared cache, serial, cold Z3 per
    // query, no preprocessing.
    driver::ExecutionOptions base_exec;
    base_exec.jobs = 1;
    base_exec.simplifyQueries = false;
    base_exec.sliceQueries = false;
    base_exec.incrementalSolver = false;
    support::Stopwatch watch;
    driver::ModuleReport baseline =
        driver::Pipeline(options, base_exec).run(module);
    double baseline_seconds = watch.seconds();

    // Full stack: the ExecutionOptions defaults.
    driver::ExecutionOptions opt_exec;
    opt_exec.jobs = 1;
    watch.reset();
    driver::ModuleReport optimized =
        driver::Pipeline(options, opt_exec).run(module);
    double optimized_seconds = watch.seconds();

    if (baseline.canonicalSummary() != optimized.canonicalSummary()) {
        std::cerr << "FAIL: optimization stack changed verdicts\n";
        return false;
    }

    // Per-function geomean of the speedup, with a floor so sub-noise
    // timings cannot dominate the mean either way.
    constexpr double kFloorSeconds = 1e-5;
    double log_sum = 0.0;
    for (size_t i = 0; i < baseline.functions.size(); ++i) {
        double base = std::max(baseline.functions[i].seconds,
                               kFloorSeconds);
        double opt = std::max(optimized.functions[i].seconds,
                              kFloorSeconds);
        log_sum += std::log(base / opt);
    }
    double geomean = baseline.functions.empty()
                         ? 1.0
                         : std::exp(log_sum /
                                    double(baseline.functions.size()));

    const smt::SolverStats &stats = optimized.solverStats;
    std::printf("baseline (cache only):  %7.2f s  (%.2f s in solver)\n",
                baseline_seconds,
                baseline.solverStats.totalSeconds);
    std::printf("optimized stack:        %7.2f s  (%.2f s in solver)\n",
                optimized_seconds, stats.totalSeconds);
    std::printf("wall speedup: %.2fx, per-function geomean: %.2fx\n\n",
                baseline_seconds / std::max(1e-9, optimized_seconds),
                geomean);
    std::printf(
        "stage attribution (%llu queries):\n"
        "  rewrite:     %llu resolved (%llu rule firings)\n"
        "  slice:       %llu resolved (%llu assertions pruned)\n"
        "  cache:       %llu hits\n"
        "  incremental: %llu misses to backend — %llu warm / %llu "
        "cold solves, %llu assertions reused, %llu fallbacks\n",
        static_cast<unsigned long long>(stats.queries),
        static_cast<unsigned long long>(stats.rewriteResolved),
        static_cast<unsigned long long>(stats.rewriteApplications),
        static_cast<unsigned long long>(stats.sliceResolved),
        static_cast<unsigned long long>(stats.slicedAssertions),
        static_cast<unsigned long long>(stats.cacheHits),
        static_cast<unsigned long long>(stats.cacheMisses),
        static_cast<unsigned long long>(stats.incrementalSolves),
        static_cast<unsigned long long>(stats.coldSolves),
        static_cast<unsigned long long>(stats.incrementalReused),
        static_cast<unsigned long long>(stats.incrementalFallbacks));
    std::printf("verdicts: identical across both runs\n\n");

    bench::JsonReporter json;
    json.field("bench", std::string("smt_opt"));
    json.field("functions", uint64_t{function_count});
    json.field("baseline_seconds", baseline_seconds);
    json.field("optimized_seconds", optimized_seconds);
    json.field("baseline_solver_seconds",
               baseline.solverStats.totalSeconds);
    json.field("optimized_solver_seconds", stats.totalSeconds);
    json.field("wall_speedup",
               baseline_seconds / std::max(1e-9, optimized_seconds));
    json.field("geomean_speedup", geomean);
    json.field("queries", stats.queries);
    json.field("rewrite_resolved", stats.rewriteResolved);
    json.field("rewrite_applications", stats.rewriteApplications);
    json.field("slice_resolved", stats.sliceResolved);
    json.field("sliced_assertions", stats.slicedAssertions);
    json.field("cache_hits", stats.cacheHits);
    json.field("cache_misses", stats.cacheMisses);
    json.field("incremental_reused", stats.incrementalReused);
    json.field("incremental_solves", stats.incrementalSolves);
    json.field("cold_solves", stats.coldSolves);
    json.field("incremental_fallbacks", stats.incrementalFallbacks);
    json.field("verdicts_identical", true);
    json.writeFile("BENCH_smt.json");
    return true;
}

int
main(int argc, char **argv)
{
    if (!runStackComparison())
        return 1;

    size_t function_count = bench::envSize("KEQ_SMTOPT_FUNCTIONS", 150);
    driver::CorpusOptions copts;
    copts.functionCount = function_count;
    copts.seed = 0x5a7; // fixed

    std::cout << "=== E7 / Section 3: SMT query optimization ===\n\n";
    std::string source = driver::generateCorpusSource(copts);

    auto run = [&](bool positive) {
        driver::PipelineOptions options;
        options.checker.positiveFormOpt = positive;
        driver::ModuleReport report =
            driver::validateSource(source, options);
        uint64_t queries = 0;
        double solver_seconds = 0.0;
        size_t succeeded = report.countOutcome(
            driver::Outcome::Succeeded);
        for (const driver::FunctionReport &fn : report.functions) {
            queries += fn.verdict.stats.solverQueries;
            solver_seconds += fn.verdict.stats.solverSeconds;
        }
        std::printf("%s form: %zu/%zu validated, %llu queries, "
                    "%.3f s solver time\n",
                    positive ? "positive" : "negative", succeeded,
                    report.functions.size(),
                    static_cast<unsigned long long>(queries),
                    solver_seconds);
        return solver_seconds;
    };

    double neg = run(false);
    double pos = run(true);
    std::printf("solver-time ratio negative/positive: %.2fx\n\n",
                neg / std::max(1e-9, pos));

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
