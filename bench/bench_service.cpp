/**
 * @file
 * Experiment E15 — the validation daemon under multi-client load
 * (no paper counterpart; the service-layer ROADMAP work).
 *
 * One in-process keqd (service::Server) versus the daemonless
 * pipeline, over the Figure 6 corpus (seed 0x6cc2006):
 *
 *   1. local reference — Pipeline::run, also the verdict oracle;
 *   2. cold daemon pass — one client against an empty cache/store:
 *      pays the same solves plus the wire round trips;
 *   3. warm saturation curve — {1, 2, 4, 8} concurrent clients, each
 *      validating the full module against the now-warm daemon;
 *   4. TCP loopback lane — the same warm single-client run over
 *      tcp:127.0.0.1 (ephemeral port), isolating what the network
 *      transport adds over AF_UNIX for multi-host deployments.
 *
 * Hard assertions (exit 1 on violation, so CI can gate on this):
 *   - every client run's canonical summary is byte-identical to the
 *     local reference (the daemon changes *where* solving happens,
 *     never what is concluded);
 *   - the warm verdict-store hit rate is >= 90% (acceptance criterion:
 *     a second client against a warm daemon re-solves nothing).
 *
 * Results land in BENCH_service.json. Scale knobs:
 * KEQ_SERVICE_FUNCTIONS (corpus size), KEQ_SERVICE_MAX_CLIENTS.
 */

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench/bench_common.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/service/client.h"
#include "src/service/server.h"
#include "src/support/stopwatch.h"
#include "src/support/thread_pool.h"

namespace {

struct ClientRun
{
    std::string summary;
    std::string error;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t busyRetries = 0;
};

/** One full-module validation through the daemon. */
ClientRun
runClient(const keq::service::Endpoint &endpoint,
          const std::string &source,
          const std::vector<std::string> &functions)
{
    using namespace keq;
    ClientRun run;
    service::DaemonClientOptions options;
    options.endpoints = {endpoint};
    service::DaemonClient client(options);
    if (!client.connect(run.error))
        return run;
    std::vector<driver::FunctionReport> reports;
    std::vector<bool> decided;
    if (!client.validateFunctions(source, functions, {}, reports,
                                  decided, run.error))
        return run;
    driver::ModuleReport report;
    report.functions = std::move(reports);
    run.summary = report.canonicalSummary();
    for (const driver::FunctionReport &fn : report.functions) {
        run.cacheHits += fn.verdict.stats.solverStats.cacheHits;
        run.cacheMisses += fn.verdict.stats.solverStats.cacheMisses;
    }
    run.busyRetries = client.busyRetries();
    return run;
}

} // namespace

int
main()
{
    using namespace keq;

    size_t function_count =
        bench::envSize("KEQ_SERVICE_FUNCTIONS", 120);
    size_t max_clients = bench::envSize("KEQ_SERVICE_MAX_CLIENTS", 8);

    driver::CorpusOptions copts;
    copts.functionCount = function_count;
    copts.seed = 0x6cc2006; // the Figure 6 corpus
    std::string source = driver::generateCorpusSource(copts);
    llvmir::Module module = llvmir::parseModule(source);
    llvmir::verifyModuleOrThrow(module);
    std::vector<std::string> functions;
    for (const llvmir::Function &fn : module.functions)
        if (!fn.isDeclaration())
            functions.push_back(fn.name);

    std::cout << "=== E15: validation daemon under multi-client load "
                 "===\n";
    std::cout << "corpus: " << function_count
              << " Figure 6 functions (seed " << copts.seed
              << "), client sweep up to " << max_clients << " (host has "
              << support::ThreadPool::hardwareThreads()
              << " hardware thread(s))\n\n";

    // 1. Local reference: the daemonless pipeline and verdict oracle.
    driver::PipelineOptions poptions;
    driver::Pipeline reference(poptions);
    support::Stopwatch watch;
    std::string reference_summary =
        reference.run(module).canonicalSummary();
    double local_seconds = watch.seconds();
    std::printf("local pipeline:          %7.2f s\n", local_seconds);

    // 2. The daemon, with a journal-backed verdict store.
    std::string stem = "keq-bench-service-" +
                       std::to_string(::getpid());
    std::string socket =
        (std::filesystem::temp_directory_path() / (stem + ".sock"))
            .string();
    std::string journal =
        (std::filesystem::temp_directory_path() / (stem + ".journal"))
            .string();
    std::remove(journal.c_str());

    service::ServerOptions soptions;
    soptions.socketPath = socket;
    // The TCP loopback lane shares the same queue/store/cache: the
    // transport is an accept-side detail, never a scheduling domain.
    soptions.listen = {service::tcpEndpoint("127.0.0.1", 0)};
    soptions.verdictJournalPath = journal;
    service::Server server(soptions);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "FAIL: daemon start: %s\n", error.c_str());
        return 1;
    }
    service::Endpoint unixEp = service::unixEndpoint(socket);
    service::Endpoint tcpEp;
    for (const service::Endpoint &ep : server.boundEndpoints())
        if (ep.kind == service::TransportKind::Tcp)
            tcpEp = ep;
    if (tcpEp.port == 0) {
        std::fprintf(stderr, "FAIL: no bound TCP endpoint\n");
        return 1;
    }

    bool ok = true;
    auto check = [&](const ClientRun &run, const char *label) {
        if (!run.error.empty()) {
            std::fprintf(stderr, "FAIL: %s: %s\n", label,
                         run.error.c_str());
            ok = false;
        } else if (run.summary != reference_summary) {
            std::fprintf(stderr,
                         "FAIL: %s verdicts diverge from the local "
                         "pipeline\n",
                         label);
            ok = false;
        }
    };

    // Cold pass: first client ever — empty cache, empty store.
    watch.reset();
    ClientRun cold = runClient(unixEp, source, functions);
    double cold_seconds = watch.seconds();
    check(cold, "cold client");
    std::printf("daemon, cold (1 client): %7.2f s (%llu cache "
                "hits, %llu misses)\n",
                cold_seconds,
                static_cast<unsigned long long>(cold.cacheHits),
                static_cast<unsigned long long>(cold.cacheMisses));

    // Warm saturation curve.
    bench::JsonReporter json;
    json.field("functions", static_cast<uint64_t>(function_count));
    json.field("local_seconds", local_seconds);
    json.field("cold_seconds", cold_seconds);
    json.field("cold_cache_hits", cold.cacheHits);
    json.field("cold_cache_misses", cold.cacheMisses);

    double warm_hit_rate = 0;
    for (size_t clients = 1; clients <= max_clients; clients *= 2) {
        std::vector<ClientRun> runs(clients);
        watch.reset();
        std::vector<std::thread> threads;
        for (size_t i = 0; i < clients; ++i)
            threads.emplace_back([&, i] {
                runs[i] = runClient(unixEp, source, functions);
            });
        for (std::thread &thread : threads)
            thread.join();
        double seconds = watch.seconds();

        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t busy = 0;
        for (size_t i = 0; i < clients; ++i) {
            check(runs[i], "warm client");
            hits += runs[i].cacheHits;
            misses += runs[i].cacheMisses;
            busy += runs[i].busyRetries;
        }
        double rate = hits + misses > 0
                          ? static_cast<double>(hits) / (hits + misses)
                          : 1.0;
        if (clients == 1)
            warm_hit_rate = rate;
        std::printf("daemon, warm, %2zu client(s): %6.2f s, hit rate "
                    "%5.1f%%, %llu busy retries\n",
                    clients, seconds, 100.0 * rate,
                    static_cast<unsigned long long>(busy));
        std::string prefix =
            "warm_" + std::to_string(clients) + "_clients_";
        json.field(prefix + "seconds", seconds);
        json.field(prefix + "hit_rate", rate);
        json.field(prefix + "busy_retries", busy);
    }

    // TCP loopback lane: the warm single-client run again, over the
    // network transport. Same verdicts, same warm store — the delta
    // against warm_1_clients_seconds is pure transport overhead.
    watch.reset();
    ClientRun tcp = runClient(tcpEp, source, functions);
    double tcp_seconds = watch.seconds();
    check(tcp, "tcp loopback client");
    uint64_t tcpLookups = tcp.cacheHits + tcp.cacheMisses;
    double tcp_hit_rate =
        tcpLookups > 0
            ? static_cast<double>(tcp.cacheHits) / tcpLookups
            : 1.0;
    std::printf("daemon, warm, tcp loopback: %5.2f s, hit rate "
                "%5.1f%%\n",
                tcp_seconds, 100.0 * tcp_hit_rate);
    json.field("tcp_warm_seconds", tcp_seconds);
    json.field("tcp_warm_hit_rate", tcp_hit_rate);

    server.stop();
    std::remove(journal.c_str());

    // Acceptance: a warm daemon re-solves (almost) nothing.
    if (warm_hit_rate < 0.9) {
        std::fprintf(stderr,
                     "FAIL: warm verdict-store hit rate %.1f%% "
                     "(acceptance floor is 90%%)\n",
                     100.0 * warm_hit_rate);
        ok = false;
    }
    json.field("warm_hit_rate", warm_hit_rate);
    json.field("verdicts_identical", ok);
    json.field("cold_speedup_vs_local",
               cold_seconds > 0 ? local_seconds / cold_seconds : 0.0);
    if (!json.writeFile("BENCH_service.json"))
        std::fprintf(stderr, "warning: could not write "
                             "BENCH_service.json\n");

    if (ok)
        std::printf("\nverdict identity + warm-store acceptance: OK\n");
    return ok ? 0 : 1;
}
