/**
 * @file
 * Experiment E10 (extension) — validating register allocation with the
 * unchanged KEQ checker (the paper's Section 1 "ongoing work").
 *
 * Runs the TV pipeline over a corpus slice twice: once validating ISel
 * (LLVM IR vs Virtual x86, the paper's main experiment) and once
 * validating register allocation (pre-RA vs post-RA Virtual x86, a
 * same-language pair). The same Checker class handles both, which is
 * the language-parametricity claim made operational.
 *
 * Scale with KEQ_RA_FUNCTIONS.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"

int
main()
{
    using namespace keq;

    size_t function_count = bench::envSize("KEQ_RA_FUNCTIONS", 150);
    driver::CorpusOptions copts;
    copts.functionCount = function_count;
    copts.seed = 0xA110C;

    std::cout << "=== E10 / extension: KEQ validating register "
                 "allocation ===\n\n";
    llvmir::Module module =
        llvmir::parseModule(driver::generateCorpusSource(copts));
    llvmir::verifyModuleOrThrow(module);

    size_t isel_ok = 0, isel_total = 0;
    size_t ra_ok = 0, ra_pressure = 0, ra_total = 0;
    double isel_seconds = 0.0, ra_seconds = 0.0;
    uint64_t isel_queries = 0, ra_queries = 0;
    for (const llvmir::Function &fn : module.functions) {
        if (fn.isDeclaration())
            continue;
        driver::FunctionReport isel_report =
            driver::validateFunction(module, fn, {});
        if (isel_report.outcome != driver::Outcome::Unsupported) {
            ++isel_total;
            isel_seconds += isel_report.seconds;
            isel_queries += isel_report.verdict.stats.solverQueries;
            if (isel_report.outcome == driver::Outcome::Succeeded)
                ++isel_ok;
        }
        driver::FunctionReport ra_report =
            driver::validateRegAlloc(module, fn, {});
        if (ra_report.outcome == driver::Outcome::Unsupported) {
            if (ra_report.detail.find("register pressure") !=
                std::string::npos) {
                ++ra_pressure;
            }
            continue;
        }
        ++ra_total;
        ra_seconds += ra_report.seconds;
        ra_queries += ra_report.verdict.stats.solverQueries;
        if (ra_report.outcome == driver::Outcome::Succeeded) {
            ++ra_ok;
        } else {
            std::cout << "RA validation failed: " << fn.name << " — "
                      << ra_report.detail << "\n";
        }
    }

    std::printf("phase                | validated | total | solver "
                "queries | time\n");
    std::printf("---------------------+-----------+-------+------------"
                "----+------\n");
    std::printf("Instruction Selection| %9zu | %5zu | %14llu | %.1f s\n",
                isel_ok, isel_total,
                static_cast<unsigned long long>(isel_queries),
                isel_seconds);
    std::printf("Register Allocation  | %9zu | %5zu | %14llu | %.1f s\n",
                ra_ok, ra_total,
                static_cast<unsigned long long>(ra_queries), ra_seconds);
    std::printf("\n(%zu functions exceeded the register file — spilling "
                "is out of scope, as in the paper's unsupported "
                "category)\n",
                ra_pressure);
    // Register-allocation proofs are same-language and coalesce almost
    // entirely in the term factory; expect far fewer queries than ISel.
    return ra_ok == ra_total ? 0 : 1;
}
