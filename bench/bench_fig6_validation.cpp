/**
 * @file
 * Experiment E1 — reproduces Figure 6: "Translation validation results
 * for GCC benchmark" (paper Section 5.1).
 *
 * The paper validates 4732 supported functions of GCC from SPEC 2006
 * with a 3-hour timeout per function on 2x Xeon E7-8837 + 12 GB, and
 * reports:
 *
 *     Succeeded                    4,331   (91.52%)
 *     Failed due to timeout          206   ( 4.35%)
 *     Failed due to out-of-memory    179   ( 3.78%)
 *     Other                           16   ( 0.34%)
 *
 * This harness validates a synthetic GCC-shaped corpus (see
 * src/driver/corpus.h for the substitution rationale) under
 * proportionally scaled budgets:
 *  - per-function wall budget  -> the paper's 3 h timeout,
 *  - sync-spec size budget     -> the K-parser memory blow-up,
 *  - crude liveness on a small deterministic slice -> the paper's
 *    16 liveness-imprecision failures.
 *
 * Scale with KEQ_FIG6_FUNCTIONS=4732 for the paper-sized run; budgets
 * with KEQ_FIG6_WALL_SECONDS / KEQ_FIG6_SPEC_BUDGET.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/driver/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/stopwatch.h"

int
main()
{
    using namespace keq;

    size_t function_count = bench::envSize("KEQ_FIG6_FUNCTIONS", 1000);
    double wall_budget = bench::envDouble("KEQ_FIG6_WALL_SECONDS", 0.13);
    size_t spec_budget = bench::envSize("KEQ_FIG6_SPEC_BUDGET", 730);
    // One in N functions is validated with the crude block-local
    // liveness, standing in for the paper's imprecise analysis.
    size_t crude_every = bench::envSize("KEQ_FIG6_CRUDE_EVERY", 40);

    driver::CorpusOptions copts;
    copts.functionCount = function_count;
    copts.seed = 0x6cc2006; // fixed corpus

    std::cout << "=== E1 / Figure 6: validation results ===\n";
    std::cout << "corpus: " << function_count
              << " synthetic GCC-shaped functions (seed "
              << copts.seed << ")\n";
    std::cout << "budgets: wall " << wall_budget << " s/function, "
              << "sync-spec " << spec_budget << " chars, crude liveness "
              << "on every " << crude_every << "th function\n\n";

    llvmir::Module module =
        llvmir::parseModule(driver::generateCorpusSource(copts));
    llvmir::verifyModuleOrThrow(module);

    support::Stopwatch total;
    driver::ModuleReport report;
    size_t index = 0;
    for (const llvmir::Function &fn : module.functions) {
        if (fn.isDeclaration())
            continue;
        driver::PipelineOptions options;
        options.checker.wallBudgetSeconds = wall_budget;
        options.checker.solverTimeoutMs = static_cast<unsigned>(
            wall_budget * 1000.0);
        options.specSizeBudget = spec_budget;
        if (crude_every > 0 && index % crude_every == crude_every - 1) {
            options.vc.precision = vcgen::LivenessPrecision::BlockLocal;
        }
        report.functions.push_back(
            driver::validateFunction(module, fn, options));
        ++index;
    }

    std::cout << report.renderTable() << "\n";

    size_t total_fns = report.functions.size();
    auto pct = [&](driver::Outcome outcome) {
        return 100.0 *
               static_cast<double>(report.countOutcome(outcome)) /
               static_cast<double>(total_fns);
    };
    std::printf("success rate: %.2f%%  (paper: 91.52%%)\n",
                pct(driver::Outcome::Succeeded));
    std::printf("timeout:      %.2f%%  (paper:  4.35%%)\n",
                pct(driver::Outcome::Timeout));
    std::printf("out-of-mem:   %.2f%%  (paper:  3.78%%)\n",
                pct(driver::Outcome::OutOfMemory));
    std::printf("other:        %.2f%%  (paper:  0.34%%)\n",
                pct(driver::Outcome::Other));
    std::printf("harness wall time: %.1f s\n", total.seconds());
    return 0;
}
