/**
 * @file
 * Experiment E14 — solver portfolio racing + batched discharge.
 *
 * Part 1 (query-level racing): a deterministic family of hard
 * bitvector queries, each solved three times — by the single default
 * lane, by a 2-lane portfolio, and by a 3-lane portfolio. The harness
 * *asserts* verdict identity across all configurations (racing must
 * shift timings, never answers), then reports wall-clock totals, the
 * geomean speedup over the hard subset (queries the single lane needs
 * >100 ms for; KEQ_PORTFOLIO_HARD_MS overrides), and the per-lane win
 * histogram showing that no single strategy dominates.
 *
 * Roster choice: the raced lanes default to seed-decorrelated specs
 * ("default,seed7" and "default,seed7,seed11"; override with
 * KEQ_PORTFOLIO_LANES_2 / KEQ_PORTFOLIO_LANES_3). On this bench's
 * nonlinear search instances, random-seed decorrelation is the
 * diversity axis with measured heavy-tailed payoff, so the race wins
 * even on a single-core host where N lanes timeshare one CPU and the
 * portfolio must recover more than the N× slice penalty. The hard
 * family below is curated for exactly that sensitivity: semiprime
 * factoring instances where per-seed solve times spread by 10-40x,
 * mixed with instances where the default lane is already the best so
 * the race's serialization cost is visible too, not hidden.
 *
 * Part 2 (batched discharge): every checked-in conformance corpus
 * file through the full pipeline with batched discharge off and on,
 * verdict identity asserted per file, wall-clock and batch counters
 * reported.
 *
 * Results land in BENCH_portfolio.json.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/conformance/corpus.h"
#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/smt/portfolio_solver.h"
#include "src/smt/term_factory.h"
#include "src/support/stopwatch.h"

namespace {

using namespace keq;

/** One benchmark query: a name, its assertions, the expected verdict. */
struct BenchQuery
{
    std::string name;
    std::vector<smt::Term> assertions;
    smt::SatResult expected;
};

/**
 * The mixed hard-query family. Three deliberately different shapes so
 * the lanes' strengths decorrelate:
 *
 *  - factor/<w>: find a nontrivial factorization of a semiprime at
 *    width w — nonlinear, search-heavy, and heavy-tailed across
 *    solver random seeds (the case portfolios exist for). The
 *    instances are fixed, curated for strategy sensitivity: on most
 *    of them some raced lane beats the default lane by a large
 *    factor, on some the default lane is fastest and the race can
 *    only lose time;
 *  - factor-prime/<w>: the same shape around a verified prime, so the
 *    instance is Unsat and the solver must exhaust the space (cheap
 *    at these widths — these pin verdict identity on the Unsat side);
 *  - mulchain/<w>: linear multiply-accumulate equalities with tight
 *    range bounds, one Sat and one parity-Unsat.
 */
std::vector<BenchQuery>
hardQueryFamily(smt::TermFactory &tf)
{
    std::vector<BenchQuery> queries;

    auto factor = [&tf](const std::string &name, unsigned width,
                        uint64_t product, smt::SatResult expected) {
        smt::Term x = tf.var("x_" + name, smt::Sort::bitVec(width));
        smt::Term y = tf.var("y_" + name, smt::Sort::bitVec(width));
        smt::Term one = tf.bvConst(width, 1);
        // Caps keep x*y < 2^width, so Sat/Unsat matches the integers
        // (no wraparound solutions).
        uint64_t cap = uint64_t{1} << (width / 2);
        std::vector<smt::Term> assertions = {
            tf.mkEq(tf.bvMul(x, y), tf.bvConst(width, product)),
            tf.bvUlt(one, x),
            tf.bvUlt(one, y),
            tf.bvUlt(x, tf.bvConst(width, cap)),
            tf.bvUlt(y, tf.bvConst(width, cap)),
            tf.bvUle(x, y),
        };
        return BenchQuery{name, std::move(assertions), expected};
    };

    // Semiprimes (Sat): both factors are primes below 2^(w/2). Sized
    // so the single default lane needs real search (~0.1-1.5s) but no
    // lane needs minutes.
    queries.push_back(factor("factor/30a", 30, 24821ull * 25343ull,
                             smt::SatResult::Sat));
    queries.push_back(factor("factor/30b", 30, 24793ull * 29173ull,
                             smt::SatResult::Sat));
    queries.push_back(factor("factor/30c", 30, 25849ull * 26339ull,
                             smt::SatResult::Sat));
    queries.push_back(factor("factor/32a", 32, 49211ull * 54617ull,
                             smt::SatResult::Sat));
    queries.push_back(factor("factor/32b", 32, 62827ull * 55201ull,
                             smt::SatResult::Sat));
    queries.push_back(factor("factor/32c", 32, 52697ull * 61253ull,
                             smt::SatResult::Sat));
    queries.push_back(factor("factor/34a", 34, 127277ull * 110771ull,
                             smt::SatResult::Sat));
    queries.push_back(factor("factor/34b", 34, 100343ull * 104549ull,
                             smt::SatResult::Sat));
    queries.push_back(factor("factor/34c", 34, 100129ull * 124739ull,
                             smt::SatResult::Sat));
    queries.push_back(factor("factor/34d", 34, 108179ull * 101377ull,
                             smt::SatResult::Sat));
    queries.push_back(factor("factor/36a", 36, 256471ull * 253999ull,
                             smt::SatResult::Sat));
    // Primes (Unsat): verified primes below (cap-1)^2, so the bound
    // constraints alone do not refute them — the solver has to
    // exhaust the factor space.
    queries.push_back(factor("factor-prime/28", 28, 241562429ull,
                             smt::SatResult::Unsat));
    queries.push_back(factor("factor-prime/30", 30, 966308699ull,
                             smt::SatResult::Unsat));

    auto mulchain = [&tf](const std::string &name, unsigned width,
                          uint64_t a, uint64_t b, uint64_t target,
                          smt::SatResult expected) {
        smt::Term x = tf.var("u_" + name, smt::Sort::bitVec(width));
        smt::Term y = tf.var("v_" + name, smt::Sort::bitVec(width));
        std::vector<smt::Term> assertions = {
            tf.mkEq(tf.bvAdd(tf.bvMul(x, tf.bvConst(width, a)),
                             tf.bvMul(y, tf.bvConst(width, b))),
                    tf.bvConst(width, target)),
            tf.bvUlt(x, tf.bvConst(width, 1u << 12)),
            tf.bvUlt(y, tf.bvConst(width, 1u << 12)),
        };
        return BenchQuery{name, std::move(assertions), expected};
    };

    // a*x + b*y == t with bounded x,y: a different query shape (linear
    // over wide words) pinning verdict identity on both polarities.
    // Bounds are kept small so these stay below the hard threshold.
    queries.push_back(mulchain("mulchain/sat", 64, 1000003, 998989,
                               1000003ull * 777 + 998989ull * 333,
                               smt::SatResult::Sat));
    queries.push_back(mulchain("mulchain/unsat", 64, 1000000, 999998,
                               // Both coefficients even, target odd.
                               1000003ull * 4242 + 1,
                               smt::SatResult::Unsat));
    return queries;
}

const char *
satName(smt::SatResult result)
{
    switch (result) {
      case smt::SatResult::Sat: return "sat";
      case smt::SatResult::Unsat: return "unsat";
      case smt::SatResult::Unknown: return "unknown";
    }
    return "?";
}

struct LaneRun
{
    std::string label;
    std::vector<double> seconds;       // per query
    std::vector<smt::SatResult> verdicts;
    smt::SolverStats stats;
};

/** Parses a lane spec, aborting the bench on malformed input. */
std::vector<smt::LaneConfig>
lanesFromSpec(const std::string &spec)
{
    std::vector<smt::LaneConfig> lanes;
    std::string error;
    if (!smt::parsePortfolioLanes(spec, lanes, error)) {
        std::fprintf(stderr, "bad lane spec '%s': %s\n", spec.c_str(),
                     error.c_str());
        std::exit(2);
    }
    return lanes;
}

/**
 * Solves every query on a fresh solver per query. The family's
 * queries are independent instances, so a shared incremental session
 * would only leak learned-lemma state (and, in a portfolio, the
 * losing lane's interrupt-recovery state) from one instance into the
 * next — per-query isolation keeps every timing reproducible in
 * isolation. Solver construction (including lane thread spawn) is
 * inside the timed region; it is sub-millisecond against these
 * queries.
 */
LaneRun
runConfiguration(const std::string &label,
                 const std::vector<smt::LaneConfig> &lanes,
                 const std::vector<BenchQuery> &queries,
                 smt::TermFactory &tf, unsigned timeout_ms)
{
    LaneRun run;
    run.label = label;
    for (const BenchQuery &query : queries) {
        support::Stopwatch watch;
        std::unique_ptr<smt::Solver> solver;
        if (lanes.size() <= 1) {
            solver = smt::makeLaneBackend(tf, lanes.front());
        } else {
            solver = std::make_unique<smt::PortfolioSolver>(tf, lanes);
        }
        solver->setTimeoutMs(timeout_ms);
        smt::SatResult verdict = solver->checkSat(query.assertions);
        run.seconds.push_back(watch.seconds());
        run.verdicts.push_back(verdict);
        const smt::SolverStats &stats = solver->stats();
        for (size_t i = 0; i < smt::SolverStats::kPortfolioMaxLanes;
             ++i)
            run.stats.portfolioWins[i] += stats.portfolioWins[i];
        run.stats.portfolioCancellations +=
            stats.portfolioCancellations;
        run.stats.crossLaneDisagreements +=
            stats.crossLaneDisagreements;
    }
    return run;
}

/** Part 1: the query-level race. Returns false on any verdict split. */
bool
runQueryRace(bench::JsonReporter &json)
{
    unsigned timeout_ms = static_cast<unsigned>(
        bench::envSize("KEQ_PORTFOLIO_TIMEOUT_MS", 120000));
    double hard_ms = bench::envDouble("KEQ_PORTFOLIO_HARD_MS", 100.0);
    const char *spec2_env = std::getenv("KEQ_PORTFOLIO_LANES_2");
    const char *spec3_env = std::getenv("KEQ_PORTFOLIO_LANES_3");
    std::string spec2 = spec2_env != nullptr ? spec2_env
                                             : "default,seed7";
    std::string spec3 = spec3_env != nullptr
                            ? spec3_env
                            : "default,seed7,seed11";

    smt::TermFactory tf;
    std::vector<BenchQuery> queries = hardQueryFamily(tf);

    std::cout << "=== E14 part 1: portfolio racing, " << queries.size()
              << " queries ===\n\n";

    LaneRun single = runConfiguration(
        "1 lane (default)", lanesFromSpec("default"), queries, tf,
        timeout_ms);
    LaneRun two = runConfiguration("2 lanes (" + spec2 + ")",
                                   lanesFromSpec(spec2), queries, tf,
                                   timeout_ms);
    std::vector<smt::LaneConfig> three_lanes = lanesFromSpec(spec3);
    LaneRun three = runConfiguration("3 lanes (" + spec3 + ")",
                                     three_lanes, queries, tf,
                                     timeout_ms);

    bool verdicts_identical = true;
    std::printf("%-20s %-8s %12s %12s %12s\n", "query", "verdict",
                "1 lane", "2 lanes", "3 lanes");
    for (size_t i = 0; i < queries.size(); ++i) {
        std::printf("%-20s %-8s %10.0fms %10.0fms %10.0fms\n",
                    queries[i].name.c_str(),
                    satName(single.verdicts[i]),
                    single.seconds[i] * 1e3, two.seconds[i] * 1e3,
                    three.seconds[i] * 1e3);
        if (single.verdicts[i] != queries[i].expected ||
            two.verdicts[i] != queries[i].expected ||
            three.verdicts[i] != queries[i].expected) {
            std::fprintf(stderr,
                         "FAIL: %s expected %s, got %s/%s/%s\n",
                         queries[i].name.c_str(),
                         satName(queries[i].expected),
                         satName(single.verdicts[i]),
                         satName(two.verdicts[i]),
                         satName(three.verdicts[i]));
            verdicts_identical = false;
        }
    }

    // Geomean speedup over the hard subset (single lane > hard_ms).
    auto geomean_vs_single = [&](const LaneRun &raced) {
        double log_sum = 0.0;
        size_t hard = 0;
        for (size_t i = 0; i < queries.size(); ++i) {
            if (single.seconds[i] * 1e3 <= hard_ms)
                continue;
            ++hard;
            log_sum += std::log(single.seconds[i] /
                                std::max(1e-6, raced.seconds[i]));
        }
        return hard == 0 ? 1.0 : std::exp(log_sum / double(hard));
    };
    size_t hard_count = 0;
    double single_total = 0, two_total = 0, three_total = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
        single_total += single.seconds[i];
        two_total += two.seconds[i];
        three_total += three.seconds[i];
        if (single.seconds[i] * 1e3 > hard_ms)
            ++hard_count;
    }
    double geomean2 = geomean_vs_single(two);
    double geomean3 = geomean_vs_single(three);

    std::printf("\nwall clock: 1 lane %.2fs, 2 lanes %.2fs, "
                "3 lanes %.2fs\n",
                single_total, two_total, three_total);
    std::printf("hard subset (>%.0fms single-lane): %zu queries, "
                "geomean speedup 2 lanes %.2fx, 3 lanes %.2fx\n",
                hard_ms, hard_count, geomean2, geomean3);
    std::printf("3-lane win histogram [");
    for (size_t i = 0; i < three_lanes.size(); ++i)
        std::printf("%s%s", i > 0 ? " " : "",
                    three_lanes[i].name.c_str());
    std::printf("]: [%llu %llu %llu], %llu losers cancelled\n",
                (unsigned long long)three.stats.portfolioWins[0],
                (unsigned long long)three.stats.portfolioWins[1],
                (unsigned long long)three.stats.portfolioWins[2],
                (unsigned long long)three.stats.portfolioCancellations);
    std::printf("verdicts: %s\n\n", verdicts_identical
                                        ? "identical across all lanes"
                                        : "SPLIT (hard failure)");

    double geomean_best = std::max(geomean2, geomean3);
    std::printf("geomean target (>=1.3x on hard subset): %s "
                "(best %.2fx)\n\n",
                geomean_best >= 1.3 ? "MET" : "NOT MET", geomean_best);

    json.field("queries", uint64_t{queries.size()});
    json.field("hard_queries", uint64_t{hard_count});
    json.field("hard_threshold_ms", hard_ms);
    json.field("two_lane_roster", spec2);
    json.field("three_lane_roster", spec3);
    json.field("single_lane_seconds", single_total);
    json.field("two_lane_seconds", two_total);
    json.field("three_lane_seconds", three_total);
    json.field("geomean_speedup_2lanes_hard", geomean2);
    json.field("geomean_speedup_3lanes_hard", geomean3);
    json.field("wins_lane0", three.stats.portfolioWins[0]);
    json.field("wins_lane1", three.stats.portfolioWins[1]);
    json.field("wins_lane2", three.stats.portfolioWins[2]);
    json.field("portfolio_cancellations",
               three.stats.portfolioCancellations);
    json.field("cross_lane_disagreements",
               three.stats.crossLaneDisagreements +
                   two.stats.crossLaneDisagreements);
    json.field("verdicts_identical", verdicts_identical);
    json.field("geomean_target_met", geomean_best >= 1.3);
    return verdicts_identical;
}

/** Part 2: batched discharge over the conformance corpus. */
bool
runBatchedDischarge(bench::JsonReporter &json)
{
    std::vector<conformance::CorpusCase> cases =
        conformance::loadCorpusDir(KEQ_CORPUS_DIR);

    std::cout << "=== E14 part 2: batched discharge, " << cases.size()
              << " corpus files ===\n\n";

    bool verdicts_identical = true;
    double plain_seconds = 0, batched_seconds = 0;
    uint64_t batched_queries = 0;
    for (const conformance::CorpusCase &corpus_case : cases) {
        llvmir::Module module =
            llvmir::parseModule(corpus_case.source);
        llvmir::verifyModuleOrThrow(module);

        driver::PipelineOptions plain_options;
        plain_options.isel = corpus_case.isel;
        support::Stopwatch watch;
        driver::ModuleReport plain =
            driver::Pipeline(plain_options, {}).run(module);
        plain_seconds += watch.seconds();

        driver::PipelineOptions batched_options = plain_options;
        batched_options.checker.batchDischarge = true;
        watch.reset();
        driver::ModuleReport batched =
            driver::Pipeline(batched_options, {}).run(module);
        batched_seconds += watch.seconds();

        if (plain.canonicalSummary() != batched.canonicalSummary()) {
            std::fprintf(stderr,
                         "FAIL: batched discharge changed verdicts "
                         "for %s\n",
                         corpus_case.name.c_str());
            verdicts_identical = false;
        }
        batched_queries += batched.solverStats.batchedQueries;
    }

    std::printf("unbatched: %.2fs, batched: %.2fs (%.2fx), "
                "%llu obligations discharged through warm sessions\n",
                plain_seconds, batched_seconds,
                plain_seconds / std::max(1e-9, batched_seconds),
                (unsigned long long)batched_queries);
    std::printf("verdicts: %s\n\n",
                verdicts_identical ? "identical across both modes"
                                   : "SPLIT (hard failure)");

    json.field("corpus_files", uint64_t{cases.size()});
    json.field("unbatched_seconds", plain_seconds);
    json.field("batched_seconds", batched_seconds);
    json.field("batched_queries", batched_queries);
    json.field("batched_verdicts_identical", verdicts_identical);
    return verdicts_identical;
}

} // namespace

int
main()
{
    bench::JsonReporter json;
    json.field("bench", std::string("portfolio"));

    bool ok = runQueryRace(json);
    ok = runBatchedDischarge(json) && ok;

    json.writeFile("BENCH_portfolio.json");
    return ok ? 0 : 1;
}
